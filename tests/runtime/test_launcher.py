"""SPMD launcher: contexts, results, failure propagation."""

import numpy as np
import pytest

from repro.runtime.context import NotInSpmdRegion, current, current_or_none
from repro.runtime.launcher import Job, run_spmd


def test_results_indexed_by_pe():
    out = run_spmd(lambda: current().pe * 10, num_pes=5)
    assert out == [0, 10, 20, 30, 40]


def test_contexts_are_thread_local():
    def kernel():
        ctx = current()
        assert ctx.job.num_pes == 3
        return (ctx.pe, ctx.clock.now)

    out = run_spmd(kernel, num_pes=3)
    assert [pe for pe, _ in out] == [0, 1, 2]


def test_no_context_outside_spmd():
    assert current_or_none() is None
    with pytest.raises(NotInSpmdRegion):
        current()


def test_context_cleared_after_run():
    run_spmd(lambda: None, num_pes=2)
    assert current_or_none() is None


def test_args_and_kwargs_forwarded():
    def kernel(a, b=0):
        return a + b + current().pe

    out = run_spmd(kernel, num_pes=2, args=(100,), kwargs={"b": 10})
    assert out == [110, 111]


def test_failure_propagates_with_pe_id():
    def kernel():
        if current().pe == 2:
            raise KeyError("broken")

    with pytest.raises(RuntimeError, match="PE 2 failed"):
        run_spmd(kernel, num_pes=4)


def test_failure_during_barrier_does_not_deadlock():
    def kernel():
        job = current().job
        if current().pe == 0:
            raise ValueError("early death")
        job.barrier.wait(current())

    with pytest.raises(RuntimeError, match="PE 0 failed"):
        run_spmd(kernel, num_pes=4)


def test_first_failing_pe_reported():
    def kernel():
        raise ValueError(f"pe {current().pe}")

    with pytest.raises(RuntimeError, match="PE 0 failed"):
        run_spmd(kernel, num_pes=3)


def test_job_validation():
    with pytest.raises(ValueError):
        Job(0)
    with pytest.raises(ValueError):
        Job(5000)


def test_memories_sized_by_heap():
    job = Job(2, heap_bytes=1 << 16)
    assert all(m.nbytes == 1 << 16 for m in job.memories)
    assert job.symmetric_allocator.capacity == 1 << 16


def test_get_layer_unknown():
    job = Job(1)
    with pytest.raises(RuntimeError, match="not attached"):
        job.get_layer("shmem")


def test_machine_object_accepted(test_machine):
    job = Job(4, test_machine)
    assert job.topology.num_nodes == 2


def test_memories_are_independent():
    def kernel():
        ctx = current()
        mem = ctx.job.memories[ctx.pe]
        mem.write(0, np.array([ctx.pe + 1], dtype=np.int64), timestamp=0.0)
        return None

    job = Job(3)
    job.run(kernel)
    vals = [int(m.read_scalar(0, np.int64)) for m in job.memories]
    assert vals == [1, 2, 3]


# ---------------------------------------------------------------------------
# run_spmd passthroughs (regression: faults/watchdog_s were silently
# dropped before they were forwarded to Job)
# ---------------------------------------------------------------------------


def test_run_spmd_forwards_faults_and_watchdog():
    from repro.sim.faults import FaultPlan

    def kernel():
        job = current().job
        return (job.faults is not None, job.watchdog.deadline_s)

    out = run_spmd(
        kernel, num_pes=2,
        faults=FaultPlan(seed=3, transient_rate=0.1),
        watchdog_s=7.5,
    )
    assert out == [(True, 7.5), (True, 7.5)]


def test_run_spmd_forwards_scheduler():
    from repro.explore import RandomWalk, Scheduler

    sched = Scheduler(RandomWalk(0))

    def kernel():
        return current().job.scheduler is sched

    assert run_spmd(kernel, num_pes=2) == [False, False]
    sched2 = Scheduler(RandomWalk(0))

    def kernel2():
        return current().job.scheduler is sched2

    assert run_spmd(kernel2, num_pes=2, scheduler=sched2) == [True, True]


# ---------------------------------------------------------------------------
# Boundary validation and reuse
# ---------------------------------------------------------------------------


def test_single_pe_job_runs():
    def kernel():
        current().job.barrier.wait(current())  # trivially releases
        return current().pe

    assert run_spmd(kernel, num_pes=1) == [0]


def test_max_pes_boundary():
    from repro.runtime.launcher import MAX_PES

    job = Job(MAX_PES, heap_bytes=4096)
    assert job.num_pes == MAX_PES
    with pytest.raises(ValueError, match=r"num_pes must be in"):
        Job(MAX_PES + 1, heap_bytes=4096)
    with pytest.raises(ValueError, match=r"num_pes must be in"):
        Job(0)


def test_every_pe_failing_is_fully_reported():
    from repro.runtime.launcher import JobFailure

    def kernel():
        raise RuntimeError(f"boom {current().pe}")

    with pytest.raises(JobFailure) as ei:
        run_spmd(kernel, num_pes=3)
    assert [pe for pe, _ in ei.value.failures] == [0, 1, 2]
    assert all(str(e) == f"boom {pe}" for pe, e in ei.value.failures)


def test_job_run_reuse():
    job = Job(2)
    first = job.run(lambda: current().pe + 1)
    second = job.run(lambda: current().pe * 10)
    assert first == [1, 2]
    assert second == [0, 10]
