"""PE memory: writes, strided scatter/gather, atomics, waiting."""

import threading

import numpy as np
import pytest

from repro.runtime.launcher import JobAborted
from repro.runtime.memory import PEMemory


def test_write_read_roundtrip():
    m = PEMemory(256)
    data = np.arange(16, dtype=np.uint8)
    m.write(10, data, timestamp=1.0)
    assert np.array_equal(m.read(10, 16), data)
    assert m.last_write_time == 1.0


def test_write_accepts_bytes_and_arrays():
    m = PEMemory(64)
    m.write(0, b"\x01\x02\x03", timestamp=0.5)
    m.write(3, np.array([9], dtype=np.int8), timestamp=0.7)
    assert list(m.read(0, 4)) == [1, 2, 3, 9]


def test_write_typed_array_viewed_as_bytes():
    m = PEMemory(64)
    m.write(0, np.array([1, 2], dtype=np.int64), timestamp=0.0)
    assert m.read(0, 16).view(np.int64).tolist() == [1, 2]


def test_out_of_range_rejected():
    m = PEMemory(32)
    with pytest.raises(IndexError):
        m.write(30, np.zeros(4, dtype=np.uint8), timestamp=0.0)
    with pytest.raises(IndexError):
        m.read(-1, 4)
    with pytest.raises(IndexError):
        m.read(30, 4)


def test_read_scalar():
    m = PEMemory(64)
    m.write(8, np.array([12345], dtype=np.int64), timestamp=0.0)
    assert m.read_scalar(8, np.int64) == 12345


def test_local_view_zero_copy():
    m = PEMemory(64)
    view = m.local_view(0, 8)
    view[:] = 7
    assert list(m.read(0, 8)) == [7] * 8


def test_write_strided_scatter():
    m = PEMemory(256)
    data = np.array([1, 2, 3], dtype=np.int32)
    m.write_strided(offset=4, stride_bytes=12, elem_size=4, data=data, timestamp=0.0)
    for i, expect in enumerate([1, 2, 3]):
        assert m.read(4 + 12 * i, 4).view(np.int32)[0] == expect
    # untouched gaps stay zero
    assert m.read(8, 4).view(np.int32)[0] == 0


def test_write_strided_bounds_checked():
    m = PEMemory(32)
    with pytest.raises(IndexError):
        m.write_strided(0, 16, 8, np.zeros(4, dtype=np.int64), timestamp=0.0)


def test_write_strided_validates_elem_size():
    m = PEMemory(64)
    with pytest.raises(ValueError):
        m.write_strided(0, 8, 3, np.zeros(4, dtype=np.uint8), timestamp=0.0)


def test_read_strided_gather():
    m = PEMemory(128)
    m.write(0, np.arange(16, dtype=np.int64), timestamp=0.0)
    out = m.read_strided(offset=0, stride_bytes=16, elem_size=8, nelems=4)
    assert out.view(np.int64).tolist() == [0, 2, 4, 6]


def test_strided_roundtrip_matches_numpy():
    m = PEMemory(1024)
    data = np.arange(20, dtype=np.float64)
    m.write_strided(16, 24, 8, data, timestamp=0.0)
    back = m.read_strided(16, 24, 8, 20)
    assert np.array_equal(back.view(np.float64), data)


def test_atomic_rmw_returns_old():
    m = PEMemory(64)
    m.write(0, np.array([10], dtype=np.int64), timestamp=0.0)
    old = m.atomic_rmw(0, np.int64, lambda v: v + 5, timestamp=1.0)
    assert old == 10
    assert m.read_scalar(0, np.int64) == 15


def test_atomic_rmw_concurrent_increments():
    m = PEMemory(64)
    n_threads, per = 8, 500

    def worker():
        for _ in range(per):
            m.atomic_rmw(0, np.int64, lambda v: v + 1, timestamp=0.0)

    ts = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert m.read_scalar(0, np.int64) == n_threads * per


def test_accumulate_elementwise():
    m = PEMemory(64)
    m.write(0, np.array([1.0, 2.0], dtype=np.float64), timestamp=0.0)
    m.accumulate(0, np.float64, np.array([10.0, 20.0]), np.add, timestamp=0.0)
    assert m.read(0, 16).view(np.float64).tolist() == [11.0, 22.0]


def test_wait_until_wakes_on_write():
    m = PEMemory(64)
    result = {}

    def waiter():
        ts = m.wait_until(
            lambda: m.read_scalar(0, np.int64) == 42, aborted=lambda: False
        )
        result["ts"] = ts

    t = threading.Thread(target=waiter)
    t.start()
    m.write(0, np.array([42], dtype=np.int64), timestamp=3.5)
    t.join(timeout=5)
    assert not t.is_alive()
    assert result["ts"] == 3.5


def test_wait_until_immediate_when_satisfied():
    m = PEMemory(64)
    m.write(0, np.array([1], dtype=np.int64), timestamp=2.0)
    ts = m.wait_until(lambda: True, aborted=lambda: False)
    assert ts == 2.0


def test_wait_until_aborts():
    m = PEMemory(64)
    flag = threading.Event()

    def waiter():
        with pytest.raises(JobAborted):
            m.wait_until(lambda: False, aborted=flag.is_set, poll_interval=0.01)

    t = threading.Thread(target=waiter)
    t.start()
    flag.set()
    t.join(timeout=5)
    assert not t.is_alive()


def test_size_validation():
    with pytest.raises(ValueError):
        PEMemory(0)
