"""Unit tests for the precompiled-plan heap primitives.

``scatter_at``/``gather_at`` are the functional half of the vectorized
data plane: one fancy-indexed copy per whole transfer plan, with the
index array and byte bounds computed once by the caller (a cached
``BatchSpec``).  They must byte-match the per-offset ``write_at``/
``read_at`` primitives on both index representations — element indices
into the ``elem_size`` view (``expanded=False``) and per-byte offsets
(``expanded=True``).
"""

import numpy as np
import pytest

from repro.runtime.memory import PEMemory

HEAP = 1 << 12


def _filled(n=HEAP):
    mem = PEMemory(n)
    mem.write(0, (np.arange(n) % 251).astype(np.uint8), 1.0)
    return mem


# ---------------------------------------------------------------------------
# gather_at
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("elem_size", [2, 4, 8])
def test_gather_at_view_path_matches_read_at(elem_size):
    mem = _filled()
    offsets = np.array([0, 16, 8, 128, 16], dtype=np.int64) * elem_size
    via_read = mem.read_at(offsets, elem_size)
    index = offsets // elem_size
    lo = int(offsets.min())
    hi = int(offsets.max()) + elem_size
    via_gather = mem.gather_at(index, elem_size=elem_size, lo=lo, hi=hi)
    assert via_gather.dtype == np.uint8
    assert via_gather.tobytes() == via_read.tobytes()


def test_gather_at_byte_path_matches_read_at():
    mem = _filled()
    elem_size = 3  # no reinterpret view exists: byte-expanded path
    offsets = np.array([5, 77, 11, 300], dtype=np.int64)
    via_read = mem.read_at(offsets, elem_size)
    index = (offsets[:, None] + np.arange(elem_size)[None, :]).reshape(-1)
    via_gather = mem.gather_at(
        index, elem_size=elem_size, lo=5, hi=303, expanded=True
    )
    assert via_gather.tobytes() == via_read.tobytes()


def test_gather_at_elem_size_one():
    mem = _filled()
    index = np.array([9, 3, 3, 511], dtype=np.int64)
    out = mem.gather_at(index, elem_size=1, lo=3, hi=512)
    assert out.tolist() == [9 % 251, 3, 3, 511 % 251]


def test_gather_at_returns_copy():
    mem = _filled()
    index = np.array([0, 1], dtype=np.int64)
    out = mem.gather_at(index, elem_size=1, lo=0, hi=2)
    out[:] = 0
    assert mem.read(0, 2).tolist() == [0, 1]


@pytest.mark.parametrize("lo,hi", [(-1, 8), (0, HEAP + 1)])
def test_gather_at_bounds(lo, hi):
    mem = _filled()
    with pytest.raises(IndexError):
        mem.gather_at(np.array([0], dtype=np.int64), elem_size=8, lo=lo, hi=hi)


# ---------------------------------------------------------------------------
# scatter_at
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("elem_size", [2, 4, 8])
def test_scatter_at_view_path_matches_write_at(elem_size):
    offsets = np.array([0, 16, 128, 48], dtype=np.int64) * elem_size
    data = np.arange(offsets.size * elem_size, dtype=np.uint8) + 100
    via_write = _filled()
    via_write.write_at(offsets, elem_size, data, 2.0)
    via_scatter = _filled()
    via_scatter.scatter_at(
        offsets // elem_size,
        data,
        2.0,
        elem_size=elem_size,
        lo=int(offsets.min()),
        hi=int(offsets.max()) + elem_size,
    )
    assert via_scatter.read(0, HEAP).tobytes() == via_write.read(0, HEAP).tobytes()


def test_scatter_at_byte_path_matches_write_at():
    elem_size = 6
    offsets = np.array([1, 71, 19], dtype=np.int64)
    data = np.arange(offsets.size * elem_size, dtype=np.uint8)
    via_write = _filled()
    via_write.write_at(offsets, elem_size, data, 2.0)
    via_scatter = _filled()
    index = (offsets[:, None] + np.arange(elem_size)[None, :]).reshape(-1)
    via_scatter.scatter_at(
        index, data, 2.0, elem_size=elem_size, lo=1, hi=77, expanded=True
    )
    assert via_scatter.read(0, HEAP).tobytes() == via_write.read(0, HEAP).tobytes()


def test_scatter_at_accepts_typed_data():
    mem = PEMemory(64)
    vals = np.array([1.5, -2.25], dtype=np.float64)
    mem.scatter_at(np.array([1, 3], dtype=np.int64), vals, 2.0, elem_size=8, lo=8, hi=32)
    assert float(mem.read_scalar(8, np.float64)) == 1.5
    assert float(mem.read_scalar(24, np.float64)) == -2.25


def test_scatter_at_publishes_timestamp():
    mem = PEMemory(64)
    assert mem.last_write_time == 0.0
    mem.scatter_at(np.array([0], dtype=np.int64), np.zeros(1), 7.5, elem_size=8, lo=0, hi=8)
    assert mem.last_write_time == 7.5
    # A write stamped earlier must not move the watermark backwards.
    mem.scatter_at(np.array([1], dtype=np.int64), np.zeros(1), 3.0, elem_size=8, lo=8, hi=16)
    assert mem.last_write_time == 7.5


@pytest.mark.parametrize("lo,hi", [(-8, 8), (0, HEAP + 8)])
def test_scatter_at_bounds(lo, hi):
    mem = _filled()
    with pytest.raises(IndexError):
        mem.scatter_at(
            np.array([0], dtype=np.int64), np.zeros(1), 1.0, elem_size=8, lo=lo, hi=hi
        )
