"""GASNet active messages and atomics emulation."""

import numpy as np
import pytest

from repro import gasnet
from repro.runtime.context import current
from tests.conftest import TEST_MACHINE


def test_am_request_runs_handler_at_target():
    def kernel():
        me, n = gasnet.mynode(), gasnet.nodes()
        box = gasnet.alloc_array((1,), np.int64)
        gasnet.barrier_all()

        def deposit(token, value):
            token.write(box.byte_offset, np.array([value], dtype=np.int64))

        gasnet.register_handler("deposit", deposit)
        gasnet.barrier_all()
        gasnet.am_request((me + 1) % n, "deposit", me + 100)
        gasnet.barrier_all()
        return int(box.local[0])

    out = gasnet.launch(kernel, num_pes=3)
    assert out == [102, 100, 101]


def test_am_roundtrip_returns_value():
    def kernel():
        me, n = gasnet.mynode(), gasnet.nodes()
        x = gasnet.alloc_array((1,), np.int64)
        x.local[0] = me * 11
        gasnet.barrier_all()

        def peek(token):
            return int(token.read(x.byte_offset, 8).view(np.int64)[0])

        gasnet.register_handler("peek", peek)
        gasnet.barrier_all()
        peer = (me + 1) % n
        val = gasnet._layer().am_roundtrip(peer, "peek")
        assert val == peer * 11
        return True

    assert all(gasnet.launch(kernel, num_pes=4))


def test_am_roundtrip_costs_more_than_oneway():
    def kernel():
        me = gasnet.mynode()
        gasnet.register_handler("nop", lambda token: None)
        gasnet.barrier_all()
        if me == 0:
            t0 = current().clock.now
            gasnet.am_request(2, "nop")
            one_way = current().clock.now - t0
            t0 = current().clock.now
            gasnet._layer().am_roundtrip(2, "nop")
            round_trip = current().clock.now - t0
            assert round_trip > one_way
        gasnet.barrier_all()
        return True

    assert all(gasnet.launch(kernel, num_pes=4, machine=TEST_MACHINE))


def test_unknown_handler_rejected():
    def kernel():
        gasnet.am_request(0, "missing")

    with pytest.raises(RuntimeError, match="no AM handler"):
        gasnet.launch(kernel, num_pes=1)


def test_conflicting_registration_rejected():
    def kernel():
        me = gasnet.mynode()

        def h1(token):
            return 1

        def h2(token):
            return 2

        gasnet._layer().register_handler("h", h1 if me == 0 else h2)

    with pytest.raises(RuntimeError, match="different functions"):
        gasnet.launch(kernel, num_pes=2)


def test_payload_delivery():
    def kernel():
        me, n = gasnet.mynode(), gasnet.nodes()
        buf = gasnet.alloc_array((8,), np.float64)
        gasnet.barrier_all()

        def fill(token, payload=None):
            token.write(buf.byte_offset, payload)

        gasnet.register_handler("fill", fill)
        gasnet.barrier_all()
        if me == 0:
            gasnet.am_request(1, "fill", payload=np.arange(8, dtype=np.float64))
        gasnet.barrier_all()
        if me == 1:
            assert list(buf.local) == list(range(8))
        return True

    assert all(gasnet.launch(kernel, num_pes=2))


def test_atomic_emulation_functionally_correct():
    def kernel():
        c = gasnet.alloc_array((1,), np.int64)
        gasnet.barrier_all()
        for _ in range(25):
            gasnet.atomic(c, 0, 0, "fadd", 1)
        gasnet.barrier_all()
        return int(c.local[0]) if gasnet.mynode() == 0 else None

    out = gasnet.launch(kernel, num_pes=5)
    assert out[0] == 125


def test_gasnet_atomic_slower_than_shmem():
    """The Fig 8 mechanism: AM-emulated AMOs cost more than NIC AMOs.

    A single uncontended initiator keeps the measurement deterministic
    (under contention, wall-clock interleaving decides which operations
    sit on the causal chain).
    """
    from repro import shmem

    def gk():
        c = gasnet.alloc_array((1,), np.int64)
        gasnet.barrier_all()
        t0 = current().clock.now
        if gasnet.mynode() == 0:
            for _ in range(20):
                gasnet.atomic(c, 2, 0, "fadd", 1)
        dt = current().clock.now - t0
        gasnet.barrier_all()
        return dt

    def sk():
        c = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        t0 = current().clock.now
        if shmem.my_pe() == 0:
            for _ in range(20):
                shmem.atomic_fadd(c, 1, pe=2)
        dt = current().clock.now - t0
        shmem.barrier_all()
        return dt

    g = gasnet.launch(gk, num_pes=4, machine=TEST_MACHINE)[0]
    s = shmem.launch(sk, num_pes=4, machine=TEST_MACHINE)[0]
    assert g > s


def test_extended_api_put_get():
    def kernel():
        me, n = gasnet.mynode(), gasnet.nodes()
        x = gasnet.alloc_array((6,), np.int64)
        x.local[:] = me
        gasnet.barrier_all()
        gasnet.put(x, np.full(3, me + 50), (me + 1) % n, offset=3)
        gasnet.quiet()
        gasnet.barrier_all()
        left = (me - 1) % n
        assert list(x.local) == [me] * 3 + [left + 50] * 3
        got = gasnet.get(x, 3, (me + 1) % n)
        assert list(got) == [(me + 1) % n] * 3
        return True

    assert all(gasnet.launch(kernel, num_pes=3))


def test_strided_loops_over_contiguous():
    """GASNet has no VIS: iput is N contiguous puts (pending count grows
    per element, and results still match NumPy)."""

    def kernel():
        x = gasnet.alloc_array((20,), np.int64)
        x.local[:] = 0
        gasnet.barrier_all()
        gasnet.iput(x, np.arange(8), tst=2, sst=1, nelems=8, pe=gasnet.mynode())
        gasnet.quiet()
        expect = np.zeros(20, dtype=np.int64)
        expect[0:16:2] = np.arange(8)
        assert np.array_equal(x.local, expect)
        got = gasnet.iget(x, tst=1, sst=2, nelems=8, pe=gasnet.mynode())
        assert np.array_equal(got, np.arange(8))
        return True

    assert all(gasnet.launch(kernel, num_pes=2))
