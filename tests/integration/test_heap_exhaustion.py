"""Symmetric-heap exhaustion during collective allocation.

Running out of symmetric heap — genuinely, or via an injected
``alloc_fail_at`` fault — must abort every PE cleanly (no hang, no
leaked threads) and leave the shared :class:`FreeListAllocator`'s
metadata consistent: ``check_invariants()`` must pass afterwards.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import caf, shmem
from repro.runtime.launcher import Job, JobFailure
from repro.sim.faults import FaultPlan
from repro.util.allocator import OutOfMemoryError


def _assert_no_leaked_pe_threads():
    leaked = [t.name for t in threading.enumerate() if t.name.startswith("pe-")]
    assert not leaked, f"leaked PE threads: {leaked}"


def test_genuine_exhaustion_aborts_all_pes_cleanly():
    job = Job(4, heap_bytes=1 << 16)
    shmem.attach(job)

    def kernel():
        held = []
        for _ in range(64):  # 64 * 4 KiB > the 64 KiB heap
            held.append(shmem.shmalloc_array((512,), np.float64))
        return len(held)

    with pytest.raises(JobFailure) as exc_info:
        job.run(kernel)
    assert isinstance(exc_info.value.__cause__, OutOfMemoryError)
    _assert_no_leaked_pe_threads()
    # The failed malloc never mutated the free list: metadata stays sound.
    job.symmetric_allocator.check_invariants()


def test_injected_alloc_fault_in_shmem_collective_alloc():
    plan = FaultPlan(seed=11, alloc_fail_at={2: 1})
    job = Job(4, faults=plan)
    shmem.attach(job)

    def kernel():
        a = shmem.shmalloc_array((8,), np.int64)  # allocation 0: fine
        b = shmem.shmalloc_array((8,), np.int64)  # allocation 1: PE 2 dies
        shmem.barrier_all()
        return a.byte_offset + b.byte_offset

    with pytest.raises(JobFailure) as exc_info:
        job.run(kernel)
    jf = exc_info.value
    assert isinstance(jf.__cause__, OutOfMemoryError)
    assert "injected" in str(jf.__cause__)
    assert jf.pe == 2
    _assert_no_leaked_pe_threads()
    # The injected failure fired *before* PE 2's collective touched the
    # allocator; another PE's leader lambda may or may not have serviced
    # the second allocation before the abort landed.  Either way the
    # metadata is consistent.
    job.symmetric_allocator.check_invariants()
    assert job.symmetric_allocator.live_blocks in (1, 2)


def test_injected_alloc_fault_in_caf_coarray_alloc():
    from repro.caf.runtime import attach as caf_attach

    plan = FaultPlan(seed=12, alloc_fail_at={0: 0})
    job = Job(2, faults=plan)
    rt = caf_attach(job)

    def kernel():
        rt.startup()
        x = caf.coarray((16,), np.float64)  # image 1's first allocation fails
        caf.sync_all()
        return x

    with pytest.raises(JobFailure) as exc_info:
        job.run(kernel)
    assert isinstance(exc_info.value.__cause__, OutOfMemoryError)
    assert exc_info.value.pe == 0
    _assert_no_leaked_pe_threads()
    job.symmetric_allocator.check_invariants()


def test_allocator_survives_alloc_free_cycles_then_exhaustion():
    """Exhaustion after real churn: the free list has seen splits and
    coalesces before the failing malloc, and must still check out."""
    job = Job(2, heap_bytes=1 << 16)
    shmem.attach(job)

    def kernel():
        for _ in range(4):
            a = shmem.shmalloc_array((256,), np.float64)
            b = shmem.shmalloc_array((128,), np.float64)
            shmem.shfree(a)
            shmem.shfree(b)
        shmem.shmalloc_array((1 << 14,), np.float64)  # 128 KiB > 64 KiB heap

    with pytest.raises(JobFailure) as exc_info:
        job.run(kernel)
    assert isinstance(exc_info.value.__cause__, OutOfMemoryError)
    _assert_no_leaked_pe_threads()
    job.symmetric_allocator.check_invariants()
    assert job.symmetric_allocator.live_blocks == 0
