"""Soak tests: long mixed workloads with end-to-end verification.

These runs combine every runtime feature under sustained concurrency
and verify global invariants at the end — the kind of burn-in a
production runtime release gets.
"""

import numpy as np

from repro import caf


def test_mixed_workload_soak():
    """Locks + atomics + strided RMA + collectives + events, many
    rounds, exact final accounting."""
    ROUNDS = 12

    def kernel():
        rng = np.random.default_rng(99 + caf.this_image())
        me, n = caf.this_image(), caf.num_images()
        ledger = caf.coarray((n,), np.int64)  # per-image deposit slots
        ledger[:] = 0
        total_atomic = caf.coarray((1,), np.int64)
        lck = caf.lock_type((2,))
        ev = caf.event_type()
        matrix = caf.coarray((8, 8), np.float64)
        matrix[:] = 0.0
        caf.sync_all()

        for round_no in range(ROUNDS):
            target = int(rng.integers(1, n + 1))
            # 1. locked read-modify-write of my slot on a random image
            with lck.guard(target, index=round_no % 2):
                v = int(ledger.on(target)[me - 1])
                ledger.on(target)[me - 1] = v + 1
            # 2. atomic accounting
            caf.atomic_add(total_atomic, 1, value=1)
            # 3. strided put into a ring neighbour's matrix
            nxt = me % n + 1
            matrix.on(nxt)[me % 8, 0:8:2] = float(round_no)
            # 4. event ping to the neighbour, consumed each round
            ev.post(nxt)
            ev.wait()
            # 5. periodic global reduction checkpoint
            if round_no % 4 == 3:
                check = np.array([float(round_no)])
                caf.co_max(check)
                assert check[0] == float(round_no)
        caf.sync_all()

        # Invariants: every (image, slot) got exactly ROUNDS total
        # deposits across the job; atomics counted every round.
        deposits = ledger.local.copy().astype(np.float64)
        caf.co_sum(deposits)
        assert deposits.sum() == ROUNDS * n, deposits
        assert caf.atomic_ref(total_atomic, 1) == ROUNDS * n
        return True

    assert all(caf.launch(kernel, num_images=6, machine="titan"))


def test_lock_storm_many_locks_many_targets():
    """A storm over an array of locks at random target images; the
    counters under each lock must balance exactly."""
    UPDATES = 30

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rng = np.random.default_rng(7 * me)
        locks = caf.lock_type((4,))
        counters = caf.coarray((4,), np.int64)
        counters[:] = 0
        caf.sync_all()
        for _ in range(UPDATES):
            target = int(rng.integers(1, n + 1))
            idx = int(rng.integers(0, 4))
            with locks.guard(target, index=idx):
                v = int(counters.on(target)[idx])
                counters.on(target)[idx] = v + 1
        caf.sync_all()
        totals = counters.local.astype(np.float64)
        caf.co_sum(totals)
        assert totals.sum() == UPDATES * n
        # no qnodes leaked
        rt = caf.current_runtime()
        assert not rt._held[me - 1]
        return True

    assert all(caf.launch(kernel, num_images=5, machine="cray-xc30"))


def test_allocation_churn_soak():
    """Repeated collective alloc/free cycles leave the heap clean."""

    def kernel():
        rt = caf.current_runtime()
        caf.sync_all()
        base = rt.job.symmetric_allocator.bytes_allocated
        caf.sync_all()  # nobody allocates while base is being read
        for i in range(15):
            a = caf.coarray((64 * (1 + i % 3),), np.float64)
            b = caf.coarray((32,), np.int64)
            a[:] = i
            caf.sync_all()
            b.deallocate()
            a.deallocate()
        caf.sync_all()
        assert rt.job.symmetric_allocator.bytes_allocated == base
        return True

    assert all(caf.launch(kernel, num_images=4))
