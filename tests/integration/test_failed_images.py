"""Failed-images model: survivable crashes, degraded collectives,
lock recovery, the replicated DHT, and engine-identical degradation.

The gate this suite enforces mirrors the chaos harness's third outcome
class: a ``survivable=True`` job that loses a PE must *complete* in
degraded mode — survivors observe ``STAT_FAILED_IMAGE``, collectives
shrink to the survivor set, dead-held locks are recovered, and the
replicated DHT loses **zero acknowledged writes** — and the degraded
execution must be schedule-stable (bit-identical virtual times and
trace digests across the threaded, cooperative, and event engines for
phase-structured programs).
"""

import random
import threading

import numpy as np
import pytest

from repro import caf
from repro.bench.dht import ReplicatedHashTable
from repro.engine.steps import BarrierStep, Done, alloc_array_step
from repro.explore import RandomWalk, Scheduler, trace_digest
from repro.runtime.context import current
from repro.runtime.failures import (
    DEFAULT_DETECT_US,
    STAT_FAILED_IMAGE,
    FailedImageRegistry,
    ImageFailedError,
)
from repro.runtime.launcher import Job, JobFailure
from repro.shmem import attach as shmem_attach
from repro.sim.faults import FaultPlan, InjectedCrash
from repro.trace.events import attach as trace_attach

HEAP = 1 << 15
ELEMS = 8
ENGINES = ("threaded", "cooperative", "event")


# ---------------------------------------------------------------------------
# Registry and fault-plan validation
# ---------------------------------------------------------------------------


def test_registry_basics():
    reg = FailedImageRegistry(4)
    assert reg.failed_pes() == ()
    assert reg.survivors() == (0, 1, 2, 3)
    assert reg.mark_failed(2)
    assert not reg.mark_failed(2)  # idempotent
    assert reg.is_failed(2) and not reg.is_failed(1)
    assert reg.count == 1
    assert reg.failed_pes() == (2,)
    assert reg.survivors((1, 2, 3)) == (1, 3)
    with pytest.raises(ValueError):
        reg.mark_failed(4)


@pytest.mark.parametrize("field", ["crash_at", "alloc_fail_at"])
def test_fault_plan_rejects_bad_sites(field):
    with pytest.raises(ValueError):
        FaultPlan(seed=1, **{field: {0: -1}})
    with pytest.raises(ValueError):
        FaultPlan(seed=1, **{field: {-1: 5}})
    with pytest.raises(ValueError):
        FaultPlan(seed=1, **{field: {0: 1.5}})


# ---------------------------------------------------------------------------
# Default mode is untouched; survivable mode degrades
# ---------------------------------------------------------------------------


def _stat_kernel():
    stat = [0]
    caf.sync_all(stat=stat)
    if caf.this_image() == 2:
        raise InjectedCrash("test crash")
    out = [stat[0]]
    out.append(caf.sync_all())
    return out, caf.failed_images(), caf.image_status(2)


def test_default_mode_crash_still_aborts():
    with pytest.raises(JobFailure) as ei:
        caf.launch(_stat_kernel, 3, heap_bytes=HEAP)
    assert isinstance(ei.value.__cause__, InjectedCrash)


def test_survivable_crash_degrades():
    results = caf.launch(_stat_kernel, 3, heap_bytes=HEAP, survivable=True)
    assert results[1] is None  # image 2 (PE 1) died; no result
    for r in (results[0], results[2]):
        (pre, post), failed, status2 = r
        # The first stat races with the crash (which fires right after
        # that barrier); the second is deterministically degraded.
        assert pre in (0, STAT_FAILED_IMAGE)
        assert post == STAT_FAILED_IMAGE
        assert failed == (2,)
        assert status2 == STAT_FAILED_IMAGE
    # A fresh job sees a fresh registry.
    clean = caf.launch(
        lambda: (caf.sync_all(), caf.failed_images()), 3,
        heap_bytes=HEAP, survivable=True,
    )
    assert all(r[1] == () for r in clean)


def test_fault_free_survivable_matches_baseline():
    # With no failures the registry stays empty and a survivable run is
    # bit-identical to the default mode: same results, same trace
    # digest (phase-structured program, so the digest is
    # schedule-independent).
    def run(survivable):
        job = Job(5, heap_bytes=HEAP, survivable=survivable)
        layer = shmem_attach(job)
        tracer = trace_attach(job)
        results = job.run(_make_body(layer, _make_script(13, 5, 6)))
        return results, trace_digest(tracer)

    assert run(False) == run(True)


# ---------------------------------------------------------------------------
# Initiator-side detection: RMA to a failed image
# ---------------------------------------------------------------------------


def _detect_kernel():
    me = caf.this_image()
    arr = caf.coarray((4,), np.int64)
    caf.sync_all()
    if me == 3:
        raise InjectedCrash("boom")
    caf.sync_all()  # released by excision; image 3 is marked by now
    ctx = current()
    t0 = ctx.clock.now
    try:
        arr.on(3)[0]
        return ("no-error", 0.0)
    except ImageFailedError as e:
        return ((e.op, e.target), ctx.clock.now - t0)


def test_rma_to_failed_image_raises_and_prices_detection():
    results = caf.launch(_detect_kernel, 3, heap_bytes=HEAP, survivable=True)
    for r in (results[0], results[1]):
        (op, target), dt = r
        assert target == 2  # 0-based PE of image 3
        assert dt == pytest.approx(DEFAULT_DETECT_US)


# ---------------------------------------------------------------------------
# Degraded collectives: survivors only
# ---------------------------------------------------------------------------


def _co_sum_kernel():
    me = caf.this_image()
    arr = np.array([float(me)])
    caf.sync_all()
    if me == 3:
        raise InjectedCrash("boom")
    caf.sync_all()
    caf.co_sum(arr)
    vec = np.array([float(me)] * 2)
    caf.co_broadcast(vec, 1)
    return float(arr[0]), vec.tolist()


def test_collectives_complete_among_survivors():
    results = caf.launch(_co_sum_kernel, 4, heap_bytes=HEAP, survivable=True)
    assert results[2] is None
    for r in (results[0], results[1], results[3]):
        total, vec = r
        assert total == 1 + 2 + 4  # image 3's contribution excised
        assert vec == [1.0, 1.0]


def test_broadcast_from_failed_root_raises():
    def kernel():
        me = caf.this_image()
        caf.sync_all()
        if me == 1:
            raise InjectedCrash("boom")
        caf.sync_all()
        vec = np.array([float(me)])
        try:
            caf.co_broadcast(vec, 1)  # root is dead
            return "no-error"
        except ImageFailedError as e:
            return e.target

    results = caf.launch(kernel, 3, heap_bytes=HEAP, survivable=True)
    assert results[0] is None
    assert results[1] == results[2] == 0


# ---------------------------------------------------------------------------
# Lock recovery from a dead holder
# ---------------------------------------------------------------------------


def _lock_recovery_kernel():
    me = caf.this_image()
    lck = caf.lock_type()
    counter = caf.coarray((1,), np.int64)
    counter[:] = 0
    caf.sync_all()
    if me == 2:
        caf.lock(lck, 1)
        caf.sync_images([1])  # image 1 now knows the lock is held
        raise InjectedCrash("dies holding lck[1]")
    if me == 1:
        caf.sync_images([2])
        # Must not deadlock: the dead holder's lock is recovered (its
        # crash hook force-releases, or the TAS spin steals from the
        # marked-failed holder).
        caf.lock(lck, 1)
        counter.on(1)[0] = 41
        caf.unlock(lck, 1)
        caf.lock(lck, 1)  # reacquirable afterwards
        v = int(counter.on(1)[0]) + 1
        counter.on(1)[0] = v
        caf.unlock(lck, 1)
        # sync_images with the dead partner: stat= reports instead of
        # raising.
        stat = [0]
        caf.sync_images([2], stat=stat)
        return v, stat[0]
    return "idle"


@pytest.mark.parametrize("algorithm", ["tas", "mcs"])
def test_lock_recovery_from_dead_holder(algorithm):
    results = caf.launch(
        _lock_recovery_kernel, 3, heap_bytes=HEAP,
        survivable=True, lock_algorithm=algorithm, watchdog_s=30.0,
    )
    assert results[0] == (42, STAT_FAILED_IMAGE)
    assert results[1] is None
    assert results[2] == "idle"


# ---------------------------------------------------------------------------
# Engine-identical degradation (phase-structured step programs)
# ---------------------------------------------------------------------------


def _make_script(seed: int, num_pes: int, phases: int):
    rng = random.Random(seed)
    script = []
    for _ in range(phases):
        active = rng.randrange(num_pes)
        ops = []
        for _ in range(rng.randint(1, 3)):
            kind = rng.choice(("put", "get", "atomic", "delay"))
            ops.append((kind, rng.randrange(num_pes), rng.randint(1, ELEMS)))
        script.append((active, ops))
    return script


def _make_body(layer, script):
    def body():
        ctx = current()
        pe = ctx.pe
        payload = np.arange(ELEMS, dtype=np.int64) + pe

        def run_phase(arr, i):
            if i == len(script):
                return Done((int(arr.local.sum()), ctx.clock.now))
            active, ops = script[i]
            if pe == active:
                for kind, target, k in ops:
                    try:
                        if kind == "put":
                            layer.put(arr, payload[:k], target, offset=0)
                        elif kind == "get":
                            layer.get(arr, k, target, offset=0)
                        elif kind == "atomic":
                            layer.atomic(arr, target, 0, "fadd", k)
                        else:
                            ctx.clock.advance(float(k))
                    except ImageFailedError:
                        pass  # degraded mode: skip ops to the dead PE
            return BarrierStep(layer, lambda: run_phase(arr, i + 1))

        return alloc_array_step(layer, (ELEMS,), np.int64,
                                lambda a: run_phase(a, 0))

    return body


def _run_survivable(engine_name, seed, num_pes, phases, plan, walk_seed=None):
    kwargs = {"faults": plan, "survivable": True, "heap_bytes": HEAP}
    if engine_name == "cooperative":
        walk = seed if walk_seed is None else walk_seed
        job = Job(num_pes, scheduler=Scheduler(RandomWalk(walk)), **kwargs)
    else:
        job = Job(num_pes, engine=engine_name, **kwargs)
    layer = shmem_attach(job)
    tracer = trace_attach(job)
    results = job.run(_make_body(layer, _make_script(seed, num_pes, phases)))
    return results, job.failed.failed_pes(), trace_digest(tracer)


@pytest.mark.parametrize("seed,crash", [(11, {2: 3}), (23, {0: 5}), (47, {3: 1})])
def test_survivor_digests_identical_across_engines(seed, crash):
    plan = FaultPlan(seed=seed, crash_at=crash)
    runs = {
        name: _run_survivable(name, seed, num_pes=5, phases=6, plan=plan)
        for name in ENGINES
    }
    results, failed, digest = runs["threaded"]
    victim = next(iter(crash))
    assert failed == (victim,)
    assert results[victim] is None
    assert sum(r is not None for r in results) == 4
    for name in ENGINES[1:]:
        assert runs[name] == runs["threaded"], (
            f"{name} degraded run diverges from threaded (seed {seed})"
        )
    # Stability across *explorer schedules*: a different cooperative
    # interleaving of the same crash plan must yield the same digest.
    other = _run_survivable("cooperative", seed, num_pes=5, phases=6,
                            plan=plan, walk_seed=seed + 1000)
    assert other == runs["threaded"], (
        f"cooperative walk {seed + 1000} diverges (seed {seed})"
    )


# ---------------------------------------------------------------------------
# Replicated DHT: crash-at-every-op-index sweep
# ---------------------------------------------------------------------------


def _rdht_kernel(updates, slots, seed):
    me = caf.this_image()
    table = ReplicatedHashTable(slots, locks_per_image=2)
    rng = np.random.default_rng(seed + me)
    keys = (me << 24) + rng.integers(0, 1 << 24, size=updates)
    caf.sync_all()
    for k in keys:
        table.update(int(k))
    stat = [0]
    caf.sync_all(stat=stat)
    return {
        "lost": table.verify_acked(),
        "pairs": table.authoritative_items(),
        "stat": stat[0],
    }


def test_rdht_fault_free_replicates():
    results = caf.launch(
        _rdht_kernel, 3, heap_bytes=1 << 17, survivable=True,
        lock_algorithm="tas", args=(4, 16, 5),
    )
    assert all(r["lost"] == [] and r["stat"] == 0 for r in results)
    pairs = sorted(p for r in results for p in r["pairs"])
    assert len(pairs) == 12  # 3 writers x 4 distinct keys, primaries only
    assert all(v == 1 for _, v in pairs)


def test_rdht_crash_sweep_never_loses_acked_writes():
    """Kill PE 1 at every (sampled) op index; survivors must finish with
    zero lost acked writes and no leaked threads."""
    baseline_threads = threading.active_count()
    crashed_runs = 0
    for at in range(1, 140, 7):
        plan = FaultPlan(seed=9, crash_at={1: at})
        results = caf.launch(
            _rdht_kernel, 3, heap_bytes=1 << 17, survivable=True,
            lock_algorithm="tas", watchdog_s=30.0,
            faults=plan, args=(4, 16, 5),
        )
        survivors = [r for r in results if r is not None]
        dead = len(results) - len(survivors)
        assert dead in (0, 1)
        crashed_runs += dead
        for r in survivors:
            assert r["lost"] == [], f"lost acked writes with crash_at {at}"
            # stat is 0 when the crash fired only after the final
            # barrier (e.g. inside the victim's own verification reads).
            assert r["stat"] in (0, STAT_FAILED_IMAGE)
        assert threading.active_count() <= baseline_threads + 1, (
            f"leaked threads after crash_at {at}"
        )
    assert crashed_runs >= 5  # the sweep must actually exercise crashes


# ---------------------------------------------------------------------------
# Process engine: real child death and injected crashes
# ---------------------------------------------------------------------------


def test_process_engine_survives_real_child_death():
    import os

    def kernel():
        me = caf.this_image()
        caf.sync_all()
        if me == 2:
            os._exit(9)  # no report, no exception — a real PE death
        stat = [0]
        caf.sync_all(stat=stat)
        return stat[0], caf.failed_images()

    results = caf.launch(
        kernel, 3, heap_bytes=1 << 20, survivable=True, engine="process",
        watchdog_s=60.0,
    )
    assert results[1] is None
    for r in (results[0], results[2]):
        assert r == (STAT_FAILED_IMAGE, (2,))


def test_process_engine_survivable_injected_crash_and_no_shm_leak():
    import os

    def kernel():
        import repro.shmem as sh

        me = sh.my_pe()
        sym = sh.shmalloc_array(4, np.int64)
        sh.barrier_all()
        for _ in range(6):
            try:
                sh.atomic_fadd(sym, 1, 0)
            except ImageFailedError:
                pass
            sh.barrier_all()
        return me

    plan = FaultPlan(seed=3, crash_at={1: 5})
    job = Job(3, heap_bytes=1 << 20, engine="process",
              survivable=True, faults=plan, watchdog_s=60.0)
    shmem_attach(job)
    names = list(job.engine._heap.segment_names)
    results = job.run(kernel)
    assert results[1] is None
    assert results[0] == 0 and results[2] == 2
    assert job.failed.failed_pes() == (1,)
    job.engine.cleanup()
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}"), f"leaked {name}"


def test_rdht_lookup_fails_over_to_replica():
    def kernel():
        me = caf.this_image()
        table = ReplicatedHashTable(16, locks_per_image=2)
        caf.sync_all()
        # Image 1 writes a key homed on image 2, which then dies.
        key = None
        if me == 1:
            for cand in range(1, 4096):
                if table.home(cand)[0] == 2:
                    key = cand
                    break
            table.update(key, 7)
        caf.sync_all()
        if me == 2:
            raise InjectedCrash("primary dies")
        caf.sync_all()
        if me == 1:
            return table.lookup(key)  # must come from the replica
        return "survivor"

    results = caf.launch(
        kernel, 3, heap_bytes=1 << 17, survivable=True,
        lock_algorithm="tas",
    )
    assert results[0] == 7
    assert results[1] is None
