"""Every example script runs end to end and verifies its own output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "Figure 1 reproduced"),
    ("heat_diffusion.py", "fields identical across policies"),
    ("dht_wordcount.py", "distributed counts match the serial truth"),
    ("hybrid_caf_shmem.py", "ring ok"),
    ("pipeline_events.py", "pipeline results verified"),
    ("trace_profile.py", "trace profile complete"),
    ("matrix_transpose.py", "all policies agree"),
    ("teams_montecarlo.py", "combined correctly"),
]


@pytest.mark.parametrize("script,marker", CASES)
def test_example_runs(script, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout, proc.stdout[-2000:]


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {name for name, _ in CASES} <= present
