"""Failure injection: one image dying must never deadlock the job.

Every blocking primitive (barriers, wait_until, lock spins, event
waits, sync images) polls the job's abort flag; these tests kill one
image at the worst moments and assert the launcher reports the root
cause promptly instead of hanging.
"""

import numpy as np
import pytest

from repro import caf, shmem


def test_death_while_others_wait_in_sync_all():
    def kernel():
        if caf.this_image() == 2:
            raise ValueError("image 2 dies before the barrier")
        caf.sync_all()

    with pytest.raises(RuntimeError, match="PE 1 failed"):
        caf.launch(kernel, num_images=4)


def test_death_while_peer_waits_on_event():
    def kernel():
        me = caf.this_image()
        ev = caf.event_type()
        caf.sync_all()
        if me == 1:
            raise KeyError("poster dies")
        ev.wait()  # would wait forever without abort propagation

    with pytest.raises(RuntimeError, match="PE 0 failed"):
        caf.launch(kernel, num_images=2)


def test_death_while_peer_spins_on_mcs_lock():
    def kernel():
        me = caf.this_image()
        lck = caf.lock_type()
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            caf.sync_images([2])  # let image 2 enqueue behind us
            raise ValueError("holder dies without unlocking")
        caf.sync_images([1])
        caf.lock(lck, 1)  # spins on the qnode forever

    with pytest.raises(RuntimeError, match="PE 0 failed"):
        caf.launch(kernel, num_images=2)


def test_death_while_peer_waits_in_sync_images():
    def kernel():
        me = caf.this_image()
        if me == 2:
            raise RuntimeError("partner never syncs")
        caf.sync_images([2])

    with pytest.raises(RuntimeError, match="PE 1 failed"):
        caf.launch(kernel, num_images=2)


def test_death_during_shmem_wait_until():
    def kernel():
        me = shmem.my_pe()
        flag = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if me == 0:
            raise ValueError("signaller dies")
        shmem.wait_until(flag, shmem.CMP_EQ, 1)

    with pytest.raises(RuntimeError, match="PE 0 failed"):
        shmem.launch(kernel, num_pes=2)


def test_death_inside_team_barrier():
    def kernel():
        me = caf.this_image()
        team = caf.form_team(1 + (me - 1) % 2)
        with caf.change_team(team):
            if me == 3:
                raise ValueError("team member dies")
            caf.sync_all()

    with pytest.raises(RuntimeError, match="PE 2 failed"):
        caf.launch(kernel, num_images=4)


def test_death_during_collective():
    def kernel():
        me = caf.this_image()
        arr = np.array([float(me)])
        if me == 4:
            raise ValueError("reducer dies")
        caf.co_sum(arr)

    with pytest.raises(RuntimeError, match="PE 3 failed"):
        caf.launch(kernel, num_images=4)


def test_surviving_images_do_not_mask_root_cause():
    """Secondary JobAborted failures are suppressed; the first real
    exception is what the launcher reports."""

    def kernel():
        me = caf.this_image()
        if me == 1:
            raise ZeroDivisionError("the actual bug")
        caf.sync_all()

    with pytest.raises(RuntimeError) as exc_info:
        caf.launch(kernel, num_images=6)
    assert "ZeroDivisionError" in str(exc_info.value)
    assert isinstance(exc_info.value.__cause__, ZeroDivisionError)


def test_death_while_peer_spins_on_shmem_set_lock():
    def kernel():
        me = shmem.my_pe()
        lock = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if me == 0:
            shmem.set_lock(lock)
            shmem.barrier_all()  # let PE 1 start spinning on the taken lock
            raise ValueError("holder dies mid-critical-section")
        shmem.barrier_all()
        shmem.set_lock(lock)  # spins forever without abort propagation

    with pytest.raises(RuntimeError, match="PE 0 failed"):
        shmem.launch(kernel, num_pes=2)


def test_death_while_peer_spins_on_tas_lock():
    def kernel():
        me = caf.this_image()
        lck = caf.lock_type()
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            caf.sync_images([2])
            raise ValueError("TAS holder dies")
        caf.sync_images([1])
        caf.lock(lck, 1)  # test-and-set retry loop

    with pytest.raises(RuntimeError, match="PE 0 failed"):
        caf.launch(kernel, num_images=2, lock_algorithm="tas")


def test_job_failure_records_every_failed_pe():
    from repro.runtime.launcher import JobFailure

    def kernel():
        me = caf.this_image()
        if me in (2, 4):
            raise ValueError(f"image {me} dies")
        caf.sync_all()

    with pytest.raises(JobFailure) as exc_info:
        caf.launch(kernel, num_images=4)
    jf = exc_info.value
    pes = [pe for pe, _ in jf.failures]
    assert pes == sorted(pes)
    assert set(pes) == {1, 3}  # images 2 and 4 are PEs 1 and 3
    assert all(isinstance(e, ValueError) for _, e in jf.failures)
    assert jf.pe == jf.failures[0][0]
    assert "+1 more PE failure" in str(jf)
    assert jf.__cause__ is jf.failures[0][1]
