"""KV service workload: generator properties, reshard crash sweep,
``authoritative_items`` edge cases, and the vt-ordered determinism of
the benchmark cells.

The traffic generator is a pure function of ``(spec, pe)`` — the
Hypothesis properties pin that down (same seed ⇒ identical stream,
also when generated *inside* kernels on different engines), plus the
statistical contracts: the read/write/scan mix is honoured exactly
(largest-remainder apportionment) and the empirical Zipf rank
frequencies track the analytic weights.

The reshard sweep mirrors the PR-9 DHT crash sweep: kill one image at
every (strided) op index while the ring is growing under load; every
surviving image must verify zero lost acked writes, and on a subset of
indices the survivor digests must be engine-identical.
"""

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import caf
from repro.bench.dht import DataLossError, ReplicatedHashTable
from repro.bench.kvservice import (
    WorkloadSpec,
    aggregate,
    engine_gate,
    generate_stream,
    kind_counts,
    percentiles,
    run_cell,
    zipf_cdf,
)
from repro.explore import RandomWalk, Scheduler
from repro.sim.faults import FaultPlan

REPO = Path(__file__).resolve().parents[2]


def _stream_sig(stream):
    return tuple((op.kind, op.rank, op.key, round(op.arrival, 9))
                 for op in stream)


# ---------------------------------------------------------------------------
# Generator properties
# ---------------------------------------------------------------------------

specs = st.builds(
    WorkloadSpec,
    ops=st.integers(1, 96),
    keyspace=st.integers(1, 64),
    zipf_s=st.floats(0.0, 2.5, allow_nan=False),
    read_frac=st.just(0.6),
    write_frac=st.just(0.3),
    scan_frac=st.just(0.1),
    mean_interarrival_us=st.floats(0.5, 1000.0, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
    disjoint=st.booleans(),
)


class TestGenerator:
    @settings(max_examples=40, deadline=None)
    @given(spec=specs, pe=st.integers(1, 8))
    def test_same_seed_same_stream(self, spec, pe):
        assert _stream_sig(generate_stream(spec, pe)) == _stream_sig(
            generate_stream(spec, pe)
        )

    @settings(max_examples=40, deadline=None)
    @given(spec=specs, pe=st.integers(1, 8))
    def test_stream_shape(self, spec, pe):
        stream = generate_stream(spec, pe)
        assert len(stream) == spec.ops
        arrivals = [op.arrival for op in stream]
        assert all(a > 0 for a in arrivals)
        assert arrivals == sorted(arrivals)
        lo = pe * spec.keyspace if spec.disjoint else 0
        for op in stream:
            assert 0 <= op.rank < spec.keyspace
            assert op.key == lo + op.rank

    @settings(max_examples=40, deadline=None)
    @given(spec=specs, pe=st.integers(1, 8))
    def test_mix_fractions_exact(self, spec, pe):
        stream = generate_stream(spec, pe)
        counts = kind_counts(spec)
        assert sum(counts) == spec.ops
        for kind, want, frac in zip(
            ("read", "write", "scan"), counts,
            (spec.read_frac, spec.write_frac, spec.scan_frac),
        ):
            got = sum(op.kind == kind for op in stream)
            assert got == want
            # Largest-remainder: within one op of the exact fraction.
            assert abs(got - frac * spec.ops) < 1.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), s=st.floats(0.4, 1.6))
    def test_zipf_rank_frequency(self, seed, s):
        keyspace = 16
        spec = WorkloadSpec(ops=6000, keyspace=keyspace, zipf_s=s,
                            read_frac=1.0, write_frac=0.0, scan_frac=0.0,
                            seed=seed)
        stream = generate_stream(spec, 1)
        freq = np.bincount([op.rank for op in stream], minlength=keyspace)
        emp = freq / len(stream)
        cdf = zipf_cdf(keyspace, s)
        theory = np.diff(cdf, prepend=0.0)
        # ~4-sigma binomial envelope per rank.
        tol = 4.0 * np.sqrt(theory * (1 - theory) / len(stream)) + 1e-9
        assert np.all(np.abs(emp - theory) <= tol)
        # The skew must actually be monotone on average: hottest rank
        # drawn at least as often as the coldest, strictly for real skew.
        if s >= 0.4:
            assert freq[0] > freq[-1]

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(read_frac=0.9, write_frac=0.3,
                         scan_frac=0.0).fractions()
        with pytest.raises(ValueError):
            WorkloadSpec(read_frac=1.1, write_frac=-0.1,
                         scan_frac=0.0).fractions()


def test_stream_identical_across_engines():
    """The stream generated inside kernels on the threaded and event
    engines matches the host-generated stream exactly."""
    spec = WorkloadSpec(ops=24, keyspace=12, zipf_s=1.1, read_frac=0.7,
                        write_frac=0.2, scan_frac=0.1, seed=99)
    want = _stream_sig(generate_stream(spec, 1))

    def kernel():
        return _stream_sig(generate_stream(spec, 1))

    threaded = caf.launch(kernel, 2, machine="stampede", heap_bytes=1 << 15)
    assert threaded[0] == want and threaded[1] == want

    from repro.engine.steps import Done
    from repro.runtime.launcher import Job

    job = Job(2, "stampede", heap_bytes=1 << 15, engine="event")
    event = job.run(lambda: Done(_stream_sig(generate_stream(spec, 1))))
    assert event[0] == want and event[1] == want


# ---------------------------------------------------------------------------
# Deterministic benchmark cells (VirtualTimeOrder)
# ---------------------------------------------------------------------------


def test_vt_cells_are_reproducible():
    spec = WorkloadSpec(ops=20, keyspace=8, zipf_s=1.0, read_frac=0.8,
                        write_frac=0.2, scan_frac=0.0,
                        mean_interarrival_us=4.0, seed=5)
    a = aggregate(run_cell(spec, images=3), spec)
    b = aggregate(run_cell(spec, images=3), spec)
    assert a == b
    assert a["latency_us"]["p50"] > 0


def test_percentiles_nearest_rank():
    lat = list(range(1, 101))
    p = percentiles(lat)
    assert p == {"p50": 50, "p95": 95, "p99": 99}
    assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_engine_gate_smoke():
    spec = WorkloadSpec(ops=20, keyspace=10, zipf_s=1.0, read_frac=0.7,
                        write_frac=0.2, scan_frac=0.1, seed=12)
    rec = engine_gate(spec, num_pes=4)
    assert rec["identical"] and len(rec["digest"]) == 16


# ---------------------------------------------------------------------------
# Reshard crash sweep (mirrors the PR-9 DHT sweep)
# ---------------------------------------------------------------------------

SWEEP_SPEC = WorkloadSpec(
    ops=10, keyspace=8, zipf_s=1.0, read_frac=0.5, write_frac=0.5,
    scan_frac=0.0, mean_interarrival_us=2.0, seed=9, disjoint=True,
)


def _reshard_crash_run(at: int, engine: str):
    plan = FaultPlan(seed=9, crash_at={2: at})
    kw = {}
    if engine == "cooperative":
        kw["scheduler"] = Scheduler(RandomWalk(plan.seed))
    results = run_cell(
        SWEEP_SPEC, images=4, ring_images=2, grow_to=4, grow_at=3,
        engine=engine, survivable=True, faults=plan, watchdog_s=60.0, **kw,
    )
    survivors = [r for r in results if r is not None]
    lost = [m for r in survivors for m in r["lost"]]
    digest = hashlib.sha256(
        json.dumps(sorted(p for r in survivors for p in r["pairs"]))
        .encode()
    ).hexdigest()
    return len(results) - len(survivors), lost, digest


def test_reshard_crash_at_every_op_index():
    """A crash at any point of the grow→drain window loses zero acked
    writes; on a subset of indices the survivor digests must agree
    between the threaded and cooperative engines."""
    crashed_runs = 0
    for at in range(1, 120, 7):
        dead, lost, digest = _reshard_crash_run(at, "threaded")
        assert lost == [], f"crash_at={at}: lost acked writes {lost[:4]}"
        if dead:
            crashed_runs += 1
        if at in (1, 43, 92):
            dead2, lost2, digest2 = _reshard_crash_run(at, "cooperative")
            assert lost2 == []
            assert dead2 == dead, f"crash_at={at} fired on one engine only"
            assert digest2 == digest, (
                f"crash_at={at}: survivor digests differ across engines"
            )
    assert crashed_runs >= 5, "sweep never reached the crash window"


# ---------------------------------------------------------------------------
# authoritative_items edge cases
# ---------------------------------------------------------------------------


def test_authoritative_items_empty_table():
    def kernel():
        table = ReplicatedHashTable(16, locks_per_image=2)
        caf.sync_all()
        return table.authoritative_items()

    results = caf.launch(kernel, 3, machine="stampede", heap_bytes=1 << 16)
    assert results == [[], [], []]


def test_authoritative_items_all_buckets_on_one_image():
    """``ring_images=1`` homes every key on image 1: image 1 owns all
    primary items, every other image's primary region is empty (the
    replica mirror on image 2 is not authoritative while 1 lives)."""
    def kernel():
        table = ReplicatedHashTable(64, locks_per_image=4, ring_images=1)
        me = caf.this_image()
        caf.sync_all()
        if me == 2:
            for k in range(10):
                table.put(k, 100 + k)
        caf.sync_all()
        return table.authoritative_items()

    results = caf.launch(
        kernel, 3, machine="stampede", heap_bytes=1 << 17,
        lock_algorithm="tas",
    )
    assert sorted(results[0]) == [(k, 100 + k) for k in range(10)]
    assert results[1] == [] and results[2] == []


def test_authoritative_items_double_failure_raises():
    """When an image and its replica host both fail, the survivors'
    digest is missing a bucket range: ``authoritative_items`` must
    raise ``DataLossError``, never silently drop the data."""
    from repro.runtime.failures import ImageFailedError

    def kernel():
        me = caf.this_image()
        table = ReplicatedHashTable(32, locks_per_image=2)
        for i in range(12):
            try:
                table.update((me << 20) + i)
            except ImageFailedError:
                pass  # both copy hosts dead: the write range is lost
        stat = [0]
        for _ in range(8):
            caf.sync_all(stat=stat)
            if len(caf.failed_images()) == 2:
                break
        if len(caf.failed_images()) != 2:
            return "no-crash"
        try:
            table.authoritative_items()
        except DataLossError:
            return "raised"
        return "silent"

    # PEs are 0-based in the fault plan: PEs 2 and 3 are images 3 and
    # 4, and secondary(3) == 4 — a failed image whose replica host has
    # also failed.
    plan = FaultPlan(seed=21, crash_at={2: 30, 3: 34})
    results = caf.launch(
        kernel, 4, machine="stampede", heap_bytes=1 << 17,
        survivable=True, lock_algorithm="tas", faults=plan, watchdog_s=60.0,
        args=(),
    )
    survivors = [r for r in results if r is not None]
    assert len(survivors) == 2
    assert all(r == "raised" for r in survivors), survivors


def test_update_rejected_on_ring_tables():
    def kernel():
        table = ReplicatedHashTable(32, ring_images=2)
        caf.sync_all()
        try:
            table.update(1)
        except ValueError:
            return "rejected"
        finally:
            caf.sync_all()
        return "allowed"

    results = caf.launch(
        kernel, 2, machine="stampede", heap_bytes=1 << 16,
        lock_algorithm="tas",
    )
    assert results == ["rejected", "rejected"]


def test_negative_keys_rejected():
    def kernel():
        table = ReplicatedHashTable(16)
        caf.sync_all()
        with pytest.raises(ValueError):
            table.put(-1, 5)
        with pytest.raises(ValueError):
            table.update(-2)
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, 2, machine="stampede", heap_bytes=1 << 16))


# ---------------------------------------------------------------------------
# The chaos survivable gate, kvservice target
# ---------------------------------------------------------------------------


def test_chaos_kvservice_degraded():
    from repro.chaos import run_survivable_cell, survivable_crash_plan

    out = run_survivable_cell(
        "kvservice", survivable_crash_plan(2015), quick=True
    )
    assert out.status == "degraded", (out.status, out.detail)
    assert out.injected.get("crashes") == 1


def test_chaos_kvservice_no_crash_is_identical():
    from repro.chaos import run_survivable_cell, survivable_crash_plan

    out = run_survivable_cell(
        "kvservice", survivable_crash_plan(7, at=10_000), quick=True
    )
    assert out.status == "identical", (out.status, out.detail)


def test_chaos_unknown_survivable_target():
    from repro.chaos import run_survivable_cell, survivable_crash_plan

    with pytest.raises(ValueError, match="kvservice"):
        run_survivable_cell("nope", survivable_crash_plan(1))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_bench_cli_lists_kvservice_in_help():
    proc = _run_cli("--help")
    assert proc.returncode == 0
    assert "kvservice" in proc.stdout


def test_bench_cli_unknown_target_clear_error():
    proc = _run_cli("no-such-target")
    assert proc.returncode != 0
    err = proc.stderr
    assert "no-such-target" in err and "KeyError" not in err
    assert "kvservice" in err  # the error lists what IS available
