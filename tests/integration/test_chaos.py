"""The chaos harness gate, exercised as a test suite.

Runs the quick schedule matrix over the DHT and lock kernels and
asserts the gate holds: bit-identity under retried transients, clean
structured aborts under crashes, never a violation.  Also covers the
CLI's exit-code contract.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosOutcome,
    crash_plan,
    escalate_plan,
    mixed_plan,
    run_cell,
    run_target,
)
from repro.chaos.__main__ import main


@pytest.mark.parametrize("target", ["dht", "locks"])
def test_gate_holds_on_quick_matrix(target):
    cells = run_target(target, [2015], images=4, quick=True, deadline_s=60.0)
    assert len(cells) == 3  # mixed + crash + escalate
    for cell in cells:
        assert cell.ok, f"{cell.target}/{cell.schedule}: {cell.detail}"
    mixed = cells[0]
    assert mixed.schedule == "mixed"
    if mixed.status == "identical" and mixed.injected.get("injected_ops", 0):
        assert mixed.elapsed_us > mixed.baseline_us


def test_mixed_schedule_injects_and_stays_identical():
    cells = run_target("dht", [2015, 2016], images=4, quick=True,
                       deadline_s=60.0, with_aborts=False)
    assert [c.schedule for c in cells] == ["mixed", "mixed"]
    assert all(c.status == "identical" for c in cells), [c.detail for c in cells]
    # The quick DHT kernel issues hundreds of ops at a 15% transient
    # rate: the schedule cannot be a no-op.
    assert all(c.injected.get("injected_ops", 0) > 0 for c in cells)
    # Retried attempts and latency jitter are priced in virtual time.
    assert all(c.elapsed_us > c.baseline_us for c in cells)


def test_crash_schedule_aborts_cleanly():
    cells = run_target("locks", [2015], images=4, quick=True, deadline_s=60.0)
    crash = next(c for c in cells if c.schedule == "crash")
    assert crash.ok
    if crash.injected.get("crashes", 0):
        assert crash.status == "aborted"
        assert "InjectedCrash" in crash.detail


def test_replay_digests_are_identical():
    """Same target, same plan, twice: identical result digests, both
    matching the fault-free answer at larger virtual time.  (Elapsed
    times themselves are scheduler-dependent under concurrent writers —
    contended locks change each PE's op sequence — so the bitwise-time
    contract is tested separately on a single-writer kernel.)"""
    from repro.chaos import _RUNNERS
    from repro.sim.faults import FaultInjector

    runner = _RUNNERS["dht"]
    baseline = runner(4, "stampede", None, 60.0, True)
    runs = []
    for _ in range(2):
        inj = FaultInjector(mixed_plan(99), 4)
        runs.append(runner(4, "stampede", inj, 60.0, True))
    assert runs[0][0] == runs[1][0]  # digest replays bit-exactly
    assert runs[0][0] == baseline[0]  # and matches the fault-free answer
    assert all(r[1] > baseline[1] for r in runs)


def test_single_writer_replay_times_are_bit_exact():
    """With one writer every timed op is issued in program order, so a
    replayed fault schedule yields bit-identical virtual times."""
    from repro.bench.dht import dht_benchmark
    from repro.bench.harness import UHCAF_CRAY_SHMEM

    def run(plan):
        return dht_benchmark(
            "stampede", UHCAF_CRAY_SHMEM, 4,
            updates_per_image=6, slots_per_image=32,
            single_writer=True, faults=plan,
        )

    base = run(None)
    t1 = run(mixed_plan(99))
    t2 = run(mixed_plan(99))
    assert t1 == t2
    assert t1 > base


def test_cell_outcome_shape():
    runner_baseline = ("digest", 1.0)
    out = ChaosOutcome("dht", "mixed", 1, "identical")
    assert out.ok
    assert not ChaosOutcome("dht", "mixed", 1, "violation").ok
    assert runner_baseline  # plans are constructible with any seed
    for plan_fn in (mixed_plan, crash_plan, escalate_plan):
        assert plan_fn(7).seed == 7


def test_run_cell_flags_unstructured_failure():
    """A failure whose root cause is a plain user exception must be a
    violation, not a clean abort."""

    def bad_runner(images, machine, faults, deadline_s, quick):
        from repro import caf

        def kernel():
            raise ValueError("user bug, not an injected fault")

        caf.launch(kernel, images, machine, faults=faults)

    from repro import chaos

    original = chaos._RUNNERS["dht"]
    chaos._RUNNERS["dht"] = bad_runner
    try:
        cell = run_cell("dht", "mixed", mixed_plan(1), ("d", 1.0), quick=True)
    finally:
        chaos._RUNNERS["dht"] = original
    assert cell.status == "violation"
    assert "unstructured" in cell.detail


def test_cli_exit_codes():
    assert main(["--targets", "locks", "--seeds", "2015", "--quick",
                 "--no-aborts"]) == 0
    assert main(["--images", "1"]) == 2
    assert main(["--targets", "nonsense"]) == 2


def test_cli_json_output(capsys):
    import json

    rc = main(["--targets", "locks", "--seeds", "2015", "--quick",
               "--no-aborts", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["violations"] == 0
    assert doc["cells"][0]["target"] == "locks"
    assert doc["cells"][0]["status"] in ("identical", "aborted")
