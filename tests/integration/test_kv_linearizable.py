"""Linearizability corpus for the KV service workload.

Three layers of evidence, per the PR-10 gate:

* **Checker units** — the Wing–Gong search itself, exercised on
  hand-written histories: sequential and overlapping-but-legal
  histories pass, a stale read after a completed write fails, a read
  of a never-written value fails, and distinct keys never constrain
  each other.
* **Explored corpus** — the real service kernel (shared Zipf keyspace,
  concurrent readers/writers, hot-key caches on every initiator) runs
  under ``@schedules`` exploration; every interleaving's merged
  history must be linearizable.  This is what certifies the cache
  coherence rule: a hit's version probe is its linearization point, so
  any stale-beyond-invalidation hit would surface here as an
  unlinearizable read.
* **Crash + reshard injection** — survivable runs that lose an image
  mid-stream (and runs that grow the bucket ring mid-stream) must
  still produce linearizable survivor histories with zero lost acked
  writes.

Plus the seeded negative: a deliberately coherence-broken cache
(``bug_stale=True`` serves hits without the version probe) must be
*rejected* by the checker — proving the gate can fail.
"""

import pytest

from repro import caf
from repro.bench.kvhistory import (
    HistRecord,
    LinReport,
    Recorder,
    check_linearizable,
    merge,
)
from repro.bench.kvservice import WorkloadSpec, _cached_get, run_cell
from repro.explore import schedules
from repro.runtime.context import current
from repro.sim.faults import FaultPlan


def _rec(pe, op, key, value, invoke, response, hit=False):
    return HistRecord(pe, op, key, value, invoke, response, hit)


# ---------------------------------------------------------------------------
# Checker units
# ---------------------------------------------------------------------------


class TestChecker:
    def test_empty_history(self):
        report = check_linearizable([])
        assert report.ok and report.total_ops == 0

    def test_sequential_history(self):
        report = check_linearizable([
            _rec(1, "get", 7, None, 0.0, 1.0),
            _rec(1, "put", 7, 10, 2.0, 3.0),
            _rec(2, "get", 7, 10, 4.0, 5.0),
        ])
        assert report.ok
        assert report.witness[7] == [0, 1, 2]

    def test_concurrent_read_may_see_either_side(self):
        # The get overlaps the put: observing the old value or the new
        # one are both legal linearisations.
        for seen in (None, 10):
            report = check_linearizable([
                _rec(1, "put", 3, 10, 0.0, 4.0),
                _rec(2, "get", 3, seen, 1.0, 2.0),
            ])
            assert report.ok, seen

    def test_stale_read_after_completed_write_rejected(self):
        # put(10) responded before the second get invoked, yet it still
        # observed the initial value: no linearisation exists.
        report = check_linearizable([
            _rec(1, "put", 3, 9, 0.0, 1.0),
            _rec(2, "get", 3, 9, 2.0, 3.0),
            _rec(1, "put", 3, 10, 4.0, 5.0),
            _rec(2, "get", 3, 9, 6.0, 7.0),
        ])
        assert not report.ok
        assert report.bad_key == 3

    def test_read_of_unwritten_value_rejected(self):
        report = check_linearizable([
            _rec(1, "put", 5, 1, 0.0, 1.0),
            _rec(2, "get", 5, 42, 2.0, 3.0),
        ])
        assert not report.ok

    def test_keys_checked_independently(self):
        # A violation on key 9 is reported as key 9 even when key 1's
        # sub-history is fine; and cross-key ordering imposes nothing.
        report = check_linearizable([
            _rec(1, "put", 1, 5, 0.0, 1.0),
            _rec(2, "get", 1, 5, 8.0, 9.0),
            _rec(1, "put", 9, 6, 2.0, 3.0),
            _rec(2, "get", 9, None, 4.0, 5.0),
        ])
        assert not report.ok and report.bad_key == 9

    def test_write_write_race_resolves_either_order(self):
        for seen in (7, 8):
            report = check_linearizable([
                _rec(1, "put", 2, 7, 0.0, 3.0),
                _rec(2, "put", 2, 8, 1.0, 4.0),
                _rec(3, "get", 2, seen, 5.0, 6.0),
            ])
            assert report.ok, seen

    def test_recorder_rejects_negative_interval(self):
        rec = Recorder(1)
        with pytest.raises(ValueError):
            rec.record("get", 1, None, 5.0, 4.0)

    def test_merge_flattens_and_sorts(self):
        a = [_rec(1, "put", 1, 5, 2.0, 3.0)]
        b = [_rec(2, "get", 1, 5, 0.0, 1.0)]
        merged = merge([a, b, None])
        assert [r.pe for r in merged] == [2, 1]


# ---------------------------------------------------------------------------
# The explored corpus: concurrent service histories
# ---------------------------------------------------------------------------

#: Shared hot keyspace, concurrent writers, caches on: the config whose
#: every explored interleaving must linearize.
CORPUS_SPEC = WorkloadSpec(
    ops=16, keyspace=5, zipf_s=1.0, read_frac=0.7, write_frac=0.3,
    scan_frac=0.0, mean_interarrival_us=2.0, seed=77,
)


def _corpus_report(scheduler, spec=CORPUS_SPEC, **kw) -> LinReport:
    results = run_cell(spec, images=3, record=True, scheduler=scheduler, **kw)
    history = merge(r["records"] for r in results if r is not None)
    assert history, "service run produced an empty history"
    return check_linearizable(history)


@schedules(n=50, seed=4100)
def test_corpus_linearizable_under_exploration(schedule):
    report = _corpus_report(schedule())
    assert report.ok, (
        f"history not linearizable at key {report.bad_key}: "
        f"{report.bad_ops}"
    )


@schedules(n=6, seed=4600)
def test_corpus_with_scans_linearizable(schedule):
    spec = WorkloadSpec(
        ops=15, keyspace=6, zipf_s=0.8, read_frac=0.6, write_frac=0.2,
        scan_frac=0.2, scan_len=3, mean_interarrival_us=2.0, seed=78,
    )
    report = _corpus_report(schedule(), spec)
    assert report.ok, (report.bad_key, report.bad_ops)


@schedules(n=8, seed=5200)
def test_crash_injected_histories_linearizable(schedule):
    # Disjoint key ranges (survivor reads never depend on the dead
    # image's unrecorded writes); the crash exercises replica failover
    # and dead-lock recovery under the reads the checker audits.
    spec = WorkloadSpec(
        ops=14, keyspace=8, zipf_s=1.0, read_frac=0.6, write_frac=0.4,
        scan_frac=0.0, mean_interarrival_us=2.0, seed=79, disjoint=True,
    )
    plan = FaultPlan(seed=11, crash_at={2: 25})
    results = run_cell(spec, images=3, record=True, scheduler=schedule(),
                       survivable=True, faults=plan, watchdog_s=60.0)
    survivors = [r for r in results if r is not None]
    assert len(survivors) == 2, "crash did not fire"
    lost = [m for r in survivors for m in r["lost"]]
    assert lost == [], f"lost acked writes: {lost}"
    report = check_linearizable(merge(r["records"] for r in survivors))
    assert report.ok, (report.bad_key, report.bad_ops)


@schedules(n=8, seed=6300)
def test_reshard_histories_linearizable(schedule):
    # Shared keyspace, caches on, ring grown mid-stream: migration
    # tombstones bump bucket versions, so cached entries for moved keys
    # must miss — any stale hit would break linearizability here.
    spec = WorkloadSpec(
        ops=16, keyspace=6, zipf_s=1.0, read_frac=0.6, write_frac=0.4,
        scan_frac=0.0, mean_interarrival_us=2.0, seed=80,
    )
    results = run_cell(spec, images=4, record=True, scheduler=schedule(),
                       ring_images=2, grow_to=4, grow_at=5)
    epochs = [r["epoch"] for r in results]
    assert max(epochs) == 1, f"ring never grew: {epochs}"
    report = check_linearizable(merge(r["records"] for r in results))
    assert report.ok, (report.bad_key, report.bad_ops)


# ---------------------------------------------------------------------------
# The seeded stale-cache negative
# ---------------------------------------------------------------------------


def _stale_cache_kernel(bug: bool):
    """Deterministic stale-hit scenario, built on the service's own
    cache path: image 1 warms its cache, image 2 overwrites the key,
    image 1 reads again.  With the coherence probe intact the second
    read misses (version changed) and observes the new value; with
    ``bug=True`` the hit skips the probe and serves the stale value —
    which is non-linearizable under *every* schedule because the
    barriers order the write's response before the read's invocation."""
    from repro.bench.dht import ReplicatedHashTable

    me = caf.this_image()
    table = ReplicatedHashTable(64, locks_per_image=4)
    rec = Recorder(me)
    cache: dict = {}
    ctx = current()

    def read(key):
        t0 = ctx.clock.now
        value, hit = _cached_get(table, cache, key, 8, bug)
        rec.record("get", key, value, t0, ctx.clock.now, hit=hit)

    def write(key, value):
        t0 = ctx.clock.now
        table.put(key, value)
        cache.pop(key, None)
        rec.record("put", key, value, t0, ctx.clock.now)

    if me == 2:
        write(7, 100)
    caf.sync_all()
    if me == 1:
        read(7)  # warms the cache with 100
    caf.sync_all()
    if me == 2:
        write(7, 200)
    caf.sync_all()
    if me == 1:
        read(7)  # probe ⇒ miss ⇒ 200; bug ⇒ stale 100
    caf.sync_all()
    return rec.records


@pytest.mark.parametrize("bug", [False, True])
def test_stale_cache_negative(bug):
    results = caf.launch(
        _stale_cache_kernel, 3, machine="stampede", heap_bytes=1 << 17,
        lock_algorithm="tas", args=(bug,),
    )
    report = check_linearizable(merge(results))
    if bug:
        assert not report.ok, "checker accepted a stale cache hit"
        assert report.bad_key == 7
    else:
        assert report.ok, (report.bad_key, report.bad_ops)
        gets = [r.value for r in results[0] if r.op == "get"]
        assert gets == [100, 200], gets  # probe caught the invalidation
