"""Cross-layer integration: multiple libraries on one job, end-to-end
programs combining every major feature."""

import numpy as np
import pytest

from repro import caf, gasnet, mpirma, shmem
from repro.runtime.launcher import Job
from tests.conftest import TEST_MACHINE


def test_three_layers_share_one_job():
    """shmem, gasnet and mpirma coexist on one job's symmetric heap."""
    job = Job(4)
    shmem.attach(job)
    gasnet.attach(job)
    mpirma.attach(job)

    def kernel():
        me = shmem.my_pe()
        a = shmem.shmalloc_array((4,), np.int64)
        b = gasnet.alloc_array((4,), np.int64)
        c = mpirma.alloc_array((4,), np.float64)
        assert len({a.byte_offset, b.byte_offset, c.byte_offset}) == 3
        a.local[:] = me
        b.local[:] = me * 10
        c.local[:] = me * 100.0
        shmem.barrier_all()
        peer = (me + 1) % 4
        assert shmem.get(a, 4, peer)[0] == peer
        assert gasnet.get(b, 4, peer)[0] == peer * 10
        win = mpirma.win_create(c)
        win.fence()
        got = win.get(4, peer)
        win.fence()
        assert got[0] == peer * 100.0
        return True

    assert all(job.run(kernel))


def test_full_application_pattern():
    """A miniature application exercising coarrays, strided halos,
    locks, events, collectives and non-symmetric data in one program."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rt = caf.current_runtime()

        # 1. distributed matrix with strided column exchange
        mat = caf.coarray((6, 8), np.float64)
        mat[:] = me
        caf.sync_all()
        nxt = me % n + 1
        mat.on(nxt)[:, 0:8:2] = np.full((6, 4), me * 1.0)
        caf.sync_all()
        prev = (me - 2) % n + 1
        assert np.all(mat.local[:, 0:8:2] == prev)
        assert np.all(mat.local[:, 1:8:2] == me)

        # 2. global accounting under a lock at the last image
        ledger = caf.coarray((1,), np.int64)
        ledger[:] = 0
        lck = caf.lock_type()
        caf.sync_all()
        with lck.guard(n):
            v = int(ledger.on(n)[0])
            ledger.on(n)[0] = v + me
        caf.sync_all()
        if me == n:
            assert int(ledger.local[0]) == n * (n + 1) // 2

        # 3. events to chain a ring of notifications
        ev = caf.event_type()
        if me == 1:
            ev.post(2)
        caf_prev = me - 1 if me > 1 else n
        if me != 1:
            ev.wait()
            if me < n:
                ev.post(me + 1)

        # 4. reduce a checksum and broadcast a verdict
        checksum = np.array([float(mat.local.sum())])
        caf.co_sum(checksum)
        verdict = np.array([1.0 if checksum[0] != 0 else 0.0])
        caf.co_broadcast(verdict, source_image=1)
        assert verdict[0] == 1.0

        # 5. non-symmetric scratch, freed before exit
        scratch = caf.nonsymmetric((16,), np.float64)
        scratch.local[:] = np.arange(16)
        ptr = scratch.packed()
        got = caf.get_remote(rt, ptr, (16,), np.float64)
        assert np.array_equal(got, np.arange(16))
        scratch.free()
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=5, machine=TEST_MACHINE))


@pytest.mark.parametrize("machine", ["stampede", "cray-xc30", "titan"])
def test_caf_runs_on_every_paper_machine(machine):
    def kernel():
        x = caf.coarray((4,), np.int64)
        x[:] = caf.this_image()
        caf.sync_all()
        return int(x.on(1)[0])

    out = caf.launch(kernel, num_images=4, machine=machine)
    assert out == [1, 1, 1, 1]


def test_virtual_time_is_deterministic_for_serial_programs():
    """Two identical single-image runs report identical virtual times."""

    def kernel():
        x = caf.coarray((64,), np.float64)
        x[:] = 1.0
        caf.sync_all()
        for _ in range(5):
            x.on(1)[0:64:2] = 2.0
        from repro.runtime.context import current

        return current().clock.now

    a = caf.launch(kernel, num_images=1)[0]
    b = caf.launch(kernel, num_images=1)[0]
    assert a == b
