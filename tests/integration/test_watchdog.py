"""Watchdog hang detection: wall-clock stalls become HangReports.

Each test constructs a genuine hang — a sync that can never complete —
with a short watchdog deadline, and asserts the launcher raises a
structured :class:`JobFailure` whose cause is a :class:`HangError`
naming the blocked PEs, within bounded wall-clock time.  Without the
watchdog every one of these programs would hang forever.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import caf, shmem
from repro.runtime.launcher import JobFailure
from repro.sim.faults import HangError

#: Watchdog deadline for these tests; generous against CI scheduling
#: noise, tiny against the pytest-timeout/faulthandler ceiling.
DEADLINE_S = 1.0

#: Launch-to-raise budget: deadline + poll granularity + thread joins.
WALL_BUDGET_S = 30.0


def _expect_hang(launch_call):
    t0 = time.monotonic()
    with pytest.raises(JobFailure) as exc_info:
        launch_call()
    assert time.monotonic() - t0 < WALL_BUDGET_S
    cause = exc_info.value.__cause__
    assert isinstance(cause, HangError)
    return cause.report


def test_wait_until_never_posted():
    def kernel():
        flag = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if shmem.my_pe() != 0:
            shmem.wait_until(flag, shmem.CMP_GE, 1)  # nobody ever posts

    report = _expect_hang(
        lambda: shmem.launch(kernel, num_pes=3, watchdog_s=DEADLINE_S)
    )
    assert set(report.blocked_pes()) == {1, 2}
    assert "wait_until" in report.render()
    assert "ge 1" in report.render()


def test_barrier_missing_participant():
    def kernel():
        if caf.this_image() == 1:
            return  # never arrives; images 2..4 wait forever
        caf.sync_all()

    report = _expect_hang(
        lambda: caf.launch(kernel, num_images=4, watchdog_s=DEADLINE_S)
    )
    assert set(report.blocked_pes()) == {1, 2, 3}
    assert "barrier" in report.render()


def test_shmem_lock_never_released():
    def kernel():
        lock = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if shmem.my_pe() == 0:
            shmem.set_lock(lock)
            return  # exits holding the lock
        time.sleep(0.05)  # let PE 0 win the race for the lock
        shmem.set_lock(lock)

    report = _expect_hang(
        lambda: shmem.launch(kernel, num_pes=2, watchdog_s=DEADLINE_S)
    )
    assert report.blocked_pes() == (1,)
    assert "shmem_set_lock" in report.render()


def test_tas_lock_never_released():
    def kernel():
        me = caf.this_image()
        lck = caf.lock_type()
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            return
        time.sleep(0.05)
        caf.lock(lck, 1)

    report = _expect_hang(
        lambda: caf.launch(
            kernel, num_images=2, lock_algorithm="tas", watchdog_s=DEADLINE_S
        )
    )
    assert report.blocked_pes() == (1,)
    assert "tas acquire" in report.render()


def test_report_includes_trace_tail_when_tracing():
    """With a tracer attached the report shows each blocked PE's last
    events, so a hang dump points at what the PE was doing."""
    from repro.runtime.launcher import Job
    from repro.shmem import attach
    from repro.trace.events import attach as trace_attach

    job = Job(2, watchdog_s=DEADLINE_S)
    attach(job)
    trace_attach(job)

    def kernel():
        flag = shmem.shmalloc_array((1,), np.int64)
        shmem.put(flag, np.array([0], dtype=np.int64), 0)  # traced op
        shmem.barrier_all()
        if shmem.my_pe() == 1:
            shmem.wait_until(flag, shmem.CMP_GE, 5)

    with pytest.raises(JobFailure) as exc_info:
        job.run(kernel)
    report = exc_info.value.__cause__.report
    rendered = report.render()
    assert report.blocked_pes() == (1,)
    assert "last events" in rendered or "->PE" in rendered


def test_healthy_run_is_untouched_by_watchdog():
    """A normal program under a short deadline completes normally: the
    watchdog is wall-clock-only and must never fire on progress."""

    def kernel():
        x = caf.coarray((4,), np.float64)
        x[:] = caf.this_image()
        caf.sync_all()
        return float(x.on(1)[0])

    out = caf.launch(kernel, num_images=2, watchdog_s=DEADLINE_S)
    assert out == [1.0, 1.0]
