"""Stress: exceptions at arbitrary points must never leak threads.

Whatever a PE is doing when it dies — mid-strided-put, holding an MCS
lock with waiters enqueued, while siblings sit in a barrier, or at an
injected crash index swept across a communication-heavy kernel — the
launcher must join every thread, report a structured failure, and leave
no ``pe-*`` daemon thread behind.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import caf
from repro.runtime.launcher import JobFailure
from repro.sim.faults import FaultPlan, InjectedCrash


def _assert_no_leaked_pe_threads():
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [t.name for t in threading.enumerate() if t.name.startswith("pe-")]
        if not leaked:
            return
        time.sleep(0.01)
    raise AssertionError(f"leaked PE threads: {leaked}")


def test_exception_inside_strided_put_loop():
    def kernel():
        me = caf.this_image()
        x = caf.coarray((8, 8), np.float64)
        x[:] = float(me)
        caf.sync_all()
        right = me % caf.num_images() + 1
        for i in range(8):
            x.on(right)[::2, i] = float(i)  # strided co-indexed put
            if me == 2 and i == 3:
                raise ValueError("dies between strided fragments")
        caf.sync_all()

    with pytest.raises(JobFailure) as exc_info:
        caf.launch(kernel, num_images=4)
    assert isinstance(exc_info.value.__cause__, ValueError)
    _assert_no_leaked_pe_threads()


def test_exception_while_holding_mcs_lock_with_waiters():
    def kernel():
        me = caf.this_image()
        lck = caf.lock_type()
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            caf.sync_images([2, 3])  # both waiters have started queueing
            time.sleep(0.05)  # let them enqueue behind the held lock
            raise RuntimeError("dies inside the critical section")
        caf.sync_images([1])
        caf.lock(lck, 1)
        caf.unlock(lck, 1)

    with pytest.raises(JobFailure) as exc_info:
        caf.launch(kernel, num_images=3)
    assert isinstance(exc_info.value.__cause__, RuntimeError)
    _assert_no_leaked_pe_threads()


def test_exception_while_siblings_sit_in_barrier():
    def kernel():
        me = caf.this_image()
        caf.sync_all()
        if me == 3:
            time.sleep(0.1)  # everyone else is already inside sync_all
            raise KeyError("late image dies instead of arriving")
        caf.sync_all()

    t0 = time.monotonic()
    with pytest.raises(JobFailure) as exc_info:
        caf.launch(kernel, num_images=5)
    assert time.monotonic() - t0 < 30.0
    assert isinstance(exc_info.value.__cause__, KeyError)
    _assert_no_leaked_pe_threads()


@pytest.mark.parametrize("crash_index", [0, 1, 5, 17, 1 << 20])
def test_injected_crash_sweep_over_dht_kernel(crash_index):
    """Kill image 2 at the Nth communication op of a lock-heavy kernel.

    Every index must yield either a clean InjectedCrash abort or (index
    beyond the run) a normal completion — never a hang, never a leak.
    """
    from repro.bench.dht import DistributedHashTable

    def kernel():
        table = DistributedHashTable(32, locks_per_image=2)
        rng = np.random.default_rng(3 + caf.this_image())
        for k in rng.integers(0, 1 << 20, size=6):
            table.update(int(k))
        caf.sync_all()
        return table.local_totals()

    plan = FaultPlan(seed=1, crash_at={1: crash_index})
    t0 = time.monotonic()
    try:
        out = caf.launch(kernel, num_images=3, faults=plan, watchdog_s=60.0)
    except JobFailure as jf:
        assert isinstance(jf.__cause__, InjectedCrash)
        assert jf.pe == 1
    else:
        # Crash index beyond the ops this PE issued: run completes and
        # every update is accounted for.
        assert sum(t[1] for t in out) == 3 * 6
    assert time.monotonic() - t0 < 60.0
    _assert_no_leaked_pe_threads()


def test_repeated_faulted_launches_leave_clean_state():
    """Back-to-back faulted launches: no cross-run leakage of threads,
    contexts, or abort state."""

    def kernel():
        x = caf.coarray((4,), np.int64)
        x[:] = caf.this_image()
        caf.sync_all()
        if caf.this_image() == 2:
            raise ValueError("boom")
        caf.sync_all()

    for _ in range(5):
        with pytest.raises(JobFailure):
            caf.launch(kernel, num_images=3)
    _assert_no_leaked_pe_threads()
    # And a healthy run still works afterwards.
    assert caf.launch(lambda: caf.this_image(), num_images=3) == [1, 2, 3]
