"""The cost-model strided planner (paper Section VII future work)."""

import numpy as np
import pytest

from repro import caf
from repro.caf.strided import (
    estimate_plan_cost,
    make_plan,
    normalize_selection,
    plan_2dim,
    plan_naive,
)
from repro.sim.netmodel import CRAY_SHMEM, MVAPICH2X_SHMEM, NetworkModel


def _params(conduit, elem_size=4, bw=10000.0):
    return {
        "elem_size": elem_size,
        "o_call_us": conduit.o_put_us,
        "bandwidth_Bpus": bw,
        "gap_fn": lambda es, sb: NetworkModel._gather_gap(conduit, es, sb),
    }


def model_plan(shape, key, conduit=CRAY_SHMEM):
    sels, _ = normalize_selection(shape, key)
    return make_plan(
        sels,
        shape,
        "model",
        iput_native=conduit.iput_native,
        model_params=_params(conduit),
    )


def test_model_picks_runs_for_matrix_oriented():
    """Contiguous pencils: putmem-per-run beats iput lines (the Himeno
    case the paper discusses in Section V-D)."""
    plan = model_plan((16, 8, 64), (slice(None), 3, slice(None)))
    assert plan.runs and not plan.lines
    assert plan.algorithm == "model"


def test_model_picks_lines_for_strided_inner():
    plan = model_plan((64, 64), (slice(0, 64, 2), slice(0, 64, 2)))
    assert plan.lines


def test_model_avoids_far_stride_base_dim():
    """On the ablation workload the model agrees with the paper's 2dim
    choice, not the call-minimizing alldim choice."""
    shape = (64, 32, 16)
    key = (slice(0, 64, 2), slice(0, 32, 2), slice(0, 16, 4))
    plan = model_plan(shape, key)
    assert plan.lines
    assert plan.base_dim == 1  # counts (32, 16, 4): middle dim wins


def test_model_without_native_iput_falls_back_to_runs():
    plan = model_plan((8, 8), (slice(0, 8, 2), slice(0, 8, 2)), MVAPICH2X_SHMEM)
    assert plan.runs and not plan.lines


def test_model_never_worse_than_fixed_policies_by_its_own_estimate():
    cases = [
        ((64, 64), (slice(0, 64, 2), slice(0, 64, 2))),
        ((64, 32, 16), (slice(0, 64, 2), slice(0, 32, 2), slice(0, 16, 4))),
        ((16, 8, 64), (slice(None), 3, slice(None))),
        ((100, 100, 100), (slice(0, 100, 4), slice(0, 80, 2), slice(0, 100, 2))),
    ]
    params = _params(CRAY_SHMEM)
    for shape, key in cases:
        sels, _ = normalize_selection(shape, key)
        chosen = make_plan(sels, shape, "model", iput_native=True, model_params=params)
        cost = estimate_plan_cost(chosen, iput_native=True, **params)
        for other in (plan_naive(sels, shape), plan_2dim(sels, shape)):
            other_cost = estimate_plan_cost(other, iput_native=True, **params)
            assert cost <= other_cost + 1e-9, (shape, key, chosen.algorithm)


def test_model_requires_params():
    sels, _ = normalize_selection((8, 8), (slice(0, 8, 2), slice(0, 8, 2)))
    with pytest.raises(ValueError, match="model_params"):
        make_plan(sels, (8, 8), "model", iput_native=True)


def test_model_policy_end_to_end():
    """strided="model" works as a runtime policy and moves correct data."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((12, 10), np.int64)
        a[:] = 0
        caf.sync_all()
        block = np.arange(6 * 5).reshape(6, 5) + me
        a.on(me % n + 1)[0:12:2, 0:10:2] = block
        caf.sync_all()
        prev = (me - 2) % n + 1
        expect = np.zeros((12, 10), dtype=np.int64)
        expect[0:12:2, 0:10:2] = np.arange(30).reshape(6, 5) + prev
        assert np.array_equal(a.local, expect)
        return True

    assert all(
        caf.launch(kernel, num_images=3, strided="model", profile="cray-shmem")
    )


def test_estimate_cost_components():
    sels, _ = normalize_selection((8,), (slice(0, 8, 2),))
    params = _params(CRAY_SHMEM)
    naive = plan_naive(sels, (8,))
    cost = estimate_plan_cost(naive, iput_native=True, **params)
    # 4 per-element calls at o_put each, plus 16 bytes of wire.
    assert cost == pytest.approx(4 * CRAY_SHMEM.o_put_us + 16 / 10000.0)
