"""CAF locks: the MCS adaptation (paper Section IV-D) and TAS baseline."""

import numpy as np
import pytest

from repro import caf
from repro.util.bitpack import unpack_remote_pointer


def _increment_under_lock(n_images, iters, **launch_kw):
    """All images bump an unprotected counter on image 1 under the lock;
    the final count proves mutual exclusion."""

    def kernel():
        lck = caf.lock_type()
        counter = caf.coarray((1,), np.int64)
        counter[:] = 0
        caf.sync_all()
        for _ in range(iters):
            caf.lock(lck, 1)
            v = int(counter.on(1)[0])  # racy without the lock
            counter.on(1)[0] = v + 1
            caf.unlock(lck, 1)
        caf.sync_all()
        return int(counter.local[0]) if caf.this_image() == 1 else None

    out = caf.launch(kernel, num_images=n_images, **launch_kw)
    return out[0]


def test_mcs_mutual_exclusion():
    assert _increment_under_lock(6, 15) == 90


def test_tas_mutual_exclusion():
    assert _increment_under_lock(6, 15, lock_algorithm="tas") == 90


def test_craycaf_backend_uses_tas_and_excludes():
    assert _increment_under_lock(4, 10, backend="craycaf") == 40


def test_mcs_over_gasnet_backend():
    assert _increment_under_lock(4, 10, backend="gasnet") == 40


def test_locks_at_different_images_are_independent():
    """lock(lck[j]) and lock(lck[k]) with j != k can be held at once —
    the per-image semantics OpenSHMEM's global locks cannot express."""

    def kernel():
        me = caf.this_image()
        lck = caf.lock_type()
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            caf.lock(lck, 2)  # different lock variable: no deadlock
            assert lck.holding(1) and lck.holding(2)
            caf.unlock(lck, 2)
            caf.unlock(lck, 1)
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=2))


def test_lock_array_indices_are_independent():
    def kernel():
        lck = caf.lock_type((4,))
        caf.sync_all()
        caf.lock(lck, 1, index=0)
        caf.lock(lck, 1, index=3)  # distinct index: held concurrently
        caf.unlock(lck, 1, index=3)
        caf.unlock(lck, 1, index=0)
        return True

    assert all(caf.launch(kernel, num_images=1))


@pytest.mark.parametrize("algo", ["mcs", "tas"])
def test_double_acquire_rejected(algo):
    def kernel():
        lck = caf.lock_type()
        caf.lock(lck, 1)
        caf.lock(lck, 1)

    with pytest.raises(RuntimeError, match="already holds"):
        caf.launch(kernel, num_images=1, lock_algorithm=algo)


@pytest.mark.parametrize("algo", ["mcs", "tas"])
def test_unlock_unheld_rejected(algo):
    def kernel():
        lck = caf.lock_type()
        caf.unlock(lck, 1)

    with pytest.raises(RuntimeError, match="does not hold"):
        caf.launch(kernel, num_images=1, lock_algorithm=algo)


@pytest.mark.parametrize("algo", ["mcs", "tas"])
def test_guard_context_manager_releases_on_error(algo):
    def kernel():
        lck = caf.lock_type()
        try:
            with lck.guard(1):
                raise KeyError("inside CS")
        except KeyError:
            pass
        assert not lck.holding(1)
        with lck.guard(1):
            assert lck.holding(1)
        return True

    assert all(caf.launch(kernel, num_images=1, lock_algorithm=algo))


@pytest.mark.parametrize("algo", ["mcs", "tas"])
def test_holding_is_per_image(algo):
    """holding() reports only this image's acquisitions: the lock at
    image 2 held by image 1 is 'held' for image 1 alone, and image 2
    cannot release it (CAF forbids cross-image unlock)."""

    def kernel():
        me = caf.this_image()
        lck = caf.lock_type()
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 2)
        caf.sync_all()
        held = lck.holding(2)
        if me == 2:
            with pytest.raises(RuntimeError, match="does not hold"):
                caf.unlock(lck, 2)
        caf.sync_all()
        if me == 1:
            caf.unlock(lck, 2)
        caf.sync_all()
        return held

    out = caf.launch(kernel, num_images=2, lock_algorithm=algo)
    assert out == [True, False]


def test_qnodes_returned_to_managed_heap():
    def kernel():
        rt = caf.current_runtime()
        lck = caf.lock_type()
        caf.sync_all()
        me_pe = caf.this_image() - 1
        before = rt._managed_alloc[me_pe].live_blocks
        for _ in range(10):
            caf.lock(lck, 1)
            caf.unlock(lck, 1)
        caf.sync_all()
        return rt._managed_alloc[me_pe].live_blocks == before

    assert all(caf.launch(kernel, num_images=4))


def test_tail_word_nil_when_uncontended():
    def kernel():
        lck = caf.lock_type()
        caf.sync_all()
        caf.lock(lck, 1)
        if caf.this_image() == 1:
            tail = int(lck.handle.local[0])
            ptr = unpack_remote_pointer(tail)
            assert ptr.image == 1  # my own qnode
        caf.unlock(lck, 1)
        caf.sync_all()
        return int(lck.handle.local[0]) if caf.this_image() == 1 else 0

    out = caf.launch(kernel, num_images=1)
    assert out[0] == 0  # tail reset to NIL after release


def test_fifo_handoff_two_images():
    """With image 2 enqueued behind image 1, the release hands over."""

    def kernel():
        me = caf.this_image()
        lck = caf.lock_type()
        order = caf.coarray((1,), np.int64)
        token = caf.coarray((1,), np.int64)
        order[:] = 0
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            caf.atomic_define(token, 2, 1)  # signal image 2: may contend
            # give image 2 time to enqueue (wall time)
            import time

            time.sleep(0.05)
            caf.atomic_add(order, 1, 1)  # first CS entry marker
            caf.unlock(lck, 1)
        else:
            rt = caf.current_runtime()
            rt.layer.wait_until(token.handle, "eq", 1)
            caf.lock(lck, 1)
            first = caf.atomic_ref(order, 1)
            caf.unlock(lck, 1)
            assert first == 1  # image 1's CS ran before ours
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=2))


def test_many_locks_held_simultaneously():
    """An image may hold M locks + wait on one (paper's M+1 qnodes)."""

    def kernel():
        n = caf.num_images()
        lck = caf.lock_type((8,))
        caf.sync_all()
        for i in range(8):
            caf.lock(lck, 1, index=i)
        assert all(lck.holding(1, index=i) for i in range(8))
        for i in reversed(range(8)):
            caf.unlock(lck, 1, index=i)
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=1))


def test_contended_lock_on_nonfirst_image():
    def kernel():
        n = caf.num_images()
        lck = caf.lock_type()
        c = caf.coarray((1,), np.int64)
        c[:] = 0
        caf.sync_all()
        target = n  # lock lives on the last image
        for _ in range(8):
            with lck.guard(target):
                v = int(c.on(target)[0])
                c.on(target)[0] = v + 1
        caf.sync_all()
        return int(c.local[0]) if caf.this_image() == target else None

    out = caf.launch(kernel, num_images=5)
    assert out[-1] == 40


def test_stats_count_acquires():
    def kernel():
        rt = caf.current_runtime()
        lck = caf.lock_type()
        caf.sync_all()
        for _ in range(3):
            with lck.guard(1):
                pass
        caf.sync_all()
        return (rt.my_stats["lock_acquires"], rt.my_stats["lock_releases"])

    out = caf.launch(kernel, num_images=2)
    assert all(o == (3, 3) for o in out)
