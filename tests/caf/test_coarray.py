"""Coarray declaration, local access, and co-indexed RMA."""

import numpy as np
import pytest

from repro import caf


def run(kernel, n=4, **kw):
    return caf.launch(kernel, num_images=n, **kw)


def test_images_are_one_based():
    out = run(lambda: (caf.this_image(), caf.num_images()), n=3)
    assert out == [(1, 3), (2, 3), (3, 3)]


def test_local_access_and_views():
    def kernel():
        x = caf.coarray((2, 3), np.int64)
        x[:] = caf.this_image()
        x[0, 1] = 99
        assert x.local[0, 1] == 99
        assert np.asarray(x).shape == (2, 3)
        return int(x.local.sum())

    out = run(kernel, n=2)
    # sum = me * 6 - me + 99 (one cell overwritten by 99)
    assert out == [104, 109]


def test_scalar_coarray():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        s = caf.coarray((), np.int64)
        s.local[()] = me * 5
        caf.sync_all()
        nxt = me % n + 1
        v = s.on(nxt).value
        assert v == nxt * 5
        caf.sync_all()
        s.on(nxt).set(100 + me)
        caf.sync_all()
        prev = (me - 2) % n + 1
        return int(s.local[()]) == 100 + prev

    assert all(run(kernel, n=3))


def test_coindexed_whole_array_put_get():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        x = caf.coarray((5,), np.float64)
        x[:] = me
        caf.sync_all()
        nxt = me % n + 1
        got = x.on(nxt)[...]
        assert np.array_equal(got, np.full(5, float(nxt)))
        return True

    assert all(run(kernel))


def test_coindexed_scalar_element():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        x = caf.coarray((4,), np.int64)
        x[:] = np.arange(4) + me * 10
        caf.sync_all()
        nxt = me % n + 1
        v = x.on(nxt)[2]
        assert v == 2 + nxt * 10
        assert np.isscalar(v) or v.shape == ()
        return True

    assert all(run(kernel, n=3))


def test_coindexed_2d_strided_put_matches_numpy():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((8, 9), np.int64)
        a[:] = -1
        caf.sync_all()
        nxt = me % n + 1
        block = np.arange(12).reshape(4, 3) + me * 100
        a.on(nxt)[0:8:2, 1:9:3] = block
        caf.sync_all()
        prev = (me - 2) % n + 1
        expect = np.full((8, 9), -1, dtype=np.int64)
        expect[0:8:2, 1:9:3] = np.arange(12).reshape(4, 3) + prev * 100
        assert np.array_equal(a.local, expect)
        return True

    assert all(run(kernel, n=3))


def test_coindexed_int_subscript_mixed_with_slices():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((3, 4, 5), np.int32)
        a[:] = np.arange(60).reshape(3, 4, 5) * (me)
        caf.sync_all()
        nxt = me % n + 1
        plane = a.on(nxt)[1, :, ::2]
        expect = (np.arange(60).reshape(3, 4, 5) * nxt)[1, :, ::2]
        assert np.array_equal(plane, expect)
        return True

    assert all(run(kernel, n=2))


def test_put_broadcast_scalar():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((4, 4), np.float64)
        a[:] = 0.0
        caf.sync_all()
        a.on(me % n + 1)[1:3, 1:3] = 7.5
        caf.sync_all()
        assert float(a.local[1:3, 1:3].sum()) == 30.0
        assert float(a.local.sum()) == 30.0
        return True

    assert all(run(kernel, n=2))


def test_put_shape_mismatch_rejected():
    def kernel():
        a = caf.coarray((4, 4), np.float64)
        a.on(1)[0:2, 0:2] = np.zeros((3, 3))

    with pytest.raises(RuntimeError, match="broadcast"):
        run(kernel, n=1)


def test_invalid_image_rejected():
    def kernel():
        a = caf.coarray((4,), np.float64)
        a.on(0)

    with pytest.raises(RuntimeError, match="1-based"):
        run(kernel, n=2)

    def kernel2():
        a = caf.coarray((4,), np.float64)
        a.on(3)

    with pytest.raises(RuntimeError, match="out of range"):
        run(kernel2, n=2)


def test_deallocate_is_collective_and_blocks_use():
    def kernel():
        a = caf.coarray((4,), np.int64)
        a.deallocate()
        try:
            _ = a.local
        except ValueError:
            return True
        return False

    assert all(run(kernel, n=2))


def test_local_sugar_on_self_reference():
    def kernel():
        me = caf.this_image()
        a = caf.coarray((3,), np.int64)
        a[:] = 1
        caf.sync_all()
        ref = a.on(me)
        assert ref.is_local
        ref[0] = 42
        return int(a.local[0])

    out = run(kernel, n=2)
    assert out == [42, 42]


def test_per_call_algorithm_override():
    def kernel():
        rt = caf.current_runtime()
        a = caf.coarray((8, 8), np.int64)
        a[:] = 0
        caf.sync_all()
        rt.reset_stats()
        a.on(caf.this_image()).put(
            (slice(0, 8, 2), slice(0, 8, 2)), 1, algorithm="naive"
        )
        naive_calls = rt.my_stats["putmem_calls"]
        a.on(caf.this_image()).put(
            (slice(0, 8, 2), slice(0, 8, 2)), 1, algorithm="2dim"
        )
        line_calls = rt.my_stats["iput_calls"]
        return (naive_calls, line_calls)

    out = caf.launch(kernel, num_images=1, backend="shmem", profile="cray-shmem")
    assert out[0] == (16, 4)


def test_empty_section_noop():
    def kernel():
        a = caf.coarray((4,), np.int64)
        a[:] = 3
        caf.sync_all()
        got = a.on(1)[2:2]
        assert got.size == 0
        a.on(1)[2:2] = np.empty(0)
        return True

    assert all(run(kernel, n=2))


def test_rejects_negative_step_sections():
    def kernel():
        a = caf.coarray((4,), np.int64)
        a.on(1)[::-1]

    with pytest.raises(RuntimeError, match="positive stride|negative-step"):
        run(kernel, n=1)
