"""CAF teams (form team / change team / end team)."""

import numpy as np
import pytest

from repro import caf


def test_form_team_partitions_images():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        team = caf.form_team(1 + (me - 1) % 2)  # odds vs evens
        return (team.team_number, team.num_images, team.member_pes)

    out = caf.launch(kernel, num_images=6)
    assert out[0] == (1, 3, (0, 2, 4))
    assert out[1] == (2, 3, (1, 3, 5))
    assert out[2][0] == 1 and out[3][0] == 2


def test_change_team_remaps_identity():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        team = caf.form_team(1 + (me - 1) // 3)  # {1,2,3} and {4,5,6}
        assert caf.team_number() == -1
        with caf.change_team(team):
            assert caf.team_number() == team.team_number
            assert caf.num_images() == 3
            assert caf.this_image() == (me - 1) % 3 + 1
            assert caf.get_team() is team
        assert caf.team_number() == -1
        assert caf.num_images() == n
        assert caf.this_image() == me
        return True

    assert all(caf.launch(kernel, num_images=6))


def test_team_scoped_coarray_and_cosubscripts():
    """Co-subscripts inside a team name *team* images; coarrays
    allocated inside the team are team-collective."""

    def kernel():
        me = caf.this_image()
        team = caf.form_team(1 + (me - 1) % 2)
        with caf.change_team(team):
            tme, tn = caf.this_image(), caf.num_images()
            x = caf.coarray((2,), np.int64)  # team-scoped allocation
            x[:] = tme * 10
            caf.sync_all()  # team barrier
            nxt = tme % tn + 1
            got = x.on(nxt)[:]
            assert list(got) == [nxt * 10] * 2
            caf.sync_all()
            x.deallocate()
        return True

    assert all(caf.launch(kernel, num_images=6))


def test_team_coarrays_do_not_collide_across_teams():
    """Two teams allocate 'simultaneously'; the shared allocator keeps
    their coarrays at disjoint offsets."""

    def kernel():
        me = caf.this_image()
        team = caf.form_team(1 + (me - 1) % 2)
        with caf.change_team(team):
            x = caf.coarray((8,), np.int64)
            x[:] = caf.team_number() * 100 + caf.this_image()
            caf.sync_all()
            off = x.handle.byte_offset
        caf.sync_all()  # initial-team barrier
        return (caf.team_number(), off, int(x.local[0]))

    out = caf.launch(kernel, num_images=4)
    offsets = {o for _, o, _ in out}
    # each team allocated its own block (offsets may match across teams
    # only if the allocator reused space, which it cannot while both live)
    by_team = {}
    for me, (tn, off, v) in enumerate(out, start=1):
        team = 1 + (me - 1) % 2
        by_team.setdefault(team, set()).add(off)
    assert all(len(v) == 1 for v in by_team.values())  # same offset within team
    assert by_team[1] != by_team[2]  # different blocks across teams


def test_team_collectives():
    def kernel():
        me = caf.this_image()
        team = caf.form_team(1 + (me - 1) % 2)
        with caf.change_team(team):
            arr = np.array([float(caf.this_image())])
            caf.co_sum(arr)
            expected = sum(range(1, caf.num_images() + 1))
            assert arr[0] == expected, (arr, expected)
            b = np.zeros(2)
            if caf.this_image() == 2:
                b[:] = [5.0, 6.0]
            caf.co_broadcast(b, source_image=2)
            assert list(b) == [5.0, 6.0]
        return True

    assert all(caf.launch(kernel, num_images=6))


def test_team_locks_and_events():
    def kernel():
        me = caf.this_image()
        team = caf.form_team(1 + (me - 1) % 2)
        with caf.change_team(team):
            tme, tn = caf.this_image(), caf.num_images()
            lck = caf.lock_type()  # team-collective declaration
            cnt = caf.coarray((1,), np.int64)
            cnt[:] = 0
            caf.sync_all()
            for _ in range(4):
                with lck.guard(1):  # lock at *team* image 1
                    v = int(cnt.on(1)[0])
                    cnt.on(1)[0] = v + 1
            caf.sync_all()
            if tme == 1:
                assert int(cnt.local[0]) == 4 * tn
        return True

    assert all(caf.launch(kernel, num_images=6))


def test_sync_images_inside_team():
    def kernel():
        me = caf.this_image()
        team = caf.form_team(1 + (me - 1) % 2)
        with caf.change_team(team):
            tme, tn = caf.this_image(), caf.num_images()
            nxt = tme % tn + 1
            prev = (tme - 2) % tn + 1
            caf.sync_images(sorted({nxt, prev}))
            caf.sync_images("*")
        return True

    assert all(caf.launch(kernel, num_images=6))


def test_nested_teams():
    def kernel():
        me = caf.this_image()
        outer = caf.form_team(1 + (me - 1) // 4)  # two teams of 4
        with caf.change_team(outer):
            inner = caf.form_team(1 + (caf.this_image() - 1) % 2)
            assert inner.num_images == 2
            with caf.change_team(inner):
                assert caf.num_images() == 2
                arr = np.array([1.0])
                caf.co_sum(arr)
                assert arr[0] == 2.0
            assert caf.num_images() == 4
        return True

    assert all(caf.launch(kernel, num_images=8))


def test_change_team_requires_membership():
    def kernel():
        me = caf.this_image()
        team = caf.form_team(me)  # every image its own team
        caf.sync_all()
        # try to enter a team we don't belong to
        if me == 1:
            foreign = caf.Team(caf.current_runtime(), 99, (1,))  # pe 1 = image 2
            try:
                with caf.change_team(foreign):
                    pass
            except caf.CafError:
                return True
            return False
        return True

    assert all(caf.launch(kernel, num_images=2))


def test_form_team_validation():
    def kernel():
        caf.form_team(0)

    with pytest.raises(RuntimeError, match="positive"):
        caf.launch(kernel, num_images=1)
