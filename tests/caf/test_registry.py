"""Tables I and II as tested artifacts."""

from repro.caf import registry


def test_table1_contains_known_implementations():
    rows = {r.implementation: r for r in registry.CAF_IMPLEMENTATIONS}
    assert rows["UHCAF"].compiler == "OpenUH"
    assert "GASNet" in rows["UHCAF"].communication_layers
    assert rows["Cray-CAF"].communication_layers == ("DMAPP",)
    assert rows["Intel-CAF"].communication_layers == ("MPI",)
    assert rows["CAF 2.0"].compiler == "Rice"
    assert "MPI" in rows["GFortran-CAF"].communication_layers


def test_this_work_row():
    assert registry.THIS_WORK.communication_layers == ("OpenSHMEM",)


def test_feature_map_covers_paper_rows():
    props = {r.property for r in registry.FEATURE_MAP}
    for expected in (
        "Symmetric data allocation",
        "Total image count",
        "Current image ID",
        "Collectives - reduction",
        "Collectives - broadcast",
        "Barrier synchronization",
        "Atomic swapping",
        "Atomic addition",
        "Atomic AND operation",
        "Atomic OR operation",
        "Atomic XOR operation",
        "Remote memory put operation",
        "Remote memory get operation",
        "Single dimensional strided put",
        "Single dimensional strided get",
        "Multi dimensional strided put",
        "Multi dimensional strided get",
        "Remote locks",
    ):
        assert expected in props, expected


def test_every_mapping_resolves_to_implementation():
    """Table II is backed by code: every named construct exists and is
    callable in this repository."""
    problems = registry.verify_feature_map()
    assert problems == []


def test_unavailable_features_are_the_papers_contributions():
    missing = [r for r in registry.FEATURE_MAP if r.shmem_impl is None]
    names = {r.property for r in missing}
    assert names == {
        "Multi dimensional strided put",
        "Multi dimensional strided get",
        "Remote locks",
    }


def test_tables_render():
    for table in (registry.table1(), registry.table2(), registry.table3()):
        text = table.render()
        assert len(text.splitlines()) > 4


def test_resolve_rejects_bogus_path():
    import pytest

    with pytest.raises((ImportError, AttributeError)):
        registry.resolve("repro.caf:does_not_exist")
