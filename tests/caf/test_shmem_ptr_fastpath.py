"""The shmem_ptr intra-node fast path (paper Section VII future work).

With ``use_shmem_ptr=True`` the runtime converts co-indexed accesses to
same-node images into direct load/store on the target's memory —
bypassing the NIC model entirely.
"""

import numpy as np

from repro import caf
from repro.runtime.context import current
from tests.conftest import TEST_MACHINE


def test_fastpath_moves_correct_data_intra_node():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rt = caf.current_runtime()
        a = caf.coarray((6, 6), np.int64)
        a[:] = 0
        caf.sync_all()
        # TEST_MACHINE: 2 cores/node -> images (1,2) and (3,4) share nodes
        buddy = me + 1 if me % 2 == 1 else me - 1
        a.on(buddy)[0:6:2, 1:6:2] = np.full((3, 3), me)
        caf.sync_all()
        my_buddy = me + 1 if me % 2 == 1 else me - 1
        expect = np.zeros((6, 6), dtype=np.int64)
        expect[0:6:2, 1:6:2] = my_buddy
        assert np.array_equal(a.local, expect)
        got = a.on(buddy)[0:6:2, 1:6:2]
        assert np.all(got == me)
        return (rt.my_stats["ptr_put_calls"], rt.my_stats["ptr_get_calls"])

    out = caf.launch(
        kernel, num_images=4, machine=TEST_MACHINE, use_shmem_ptr=True
    )
    assert all(o == (1, 1) for o in out)


def test_fastpath_skips_cross_node():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rt = caf.current_runtime()
        a = caf.coarray((4,), np.int64)
        a[:] = me
        caf.sync_all()
        # pick an image on a different node explicitly: images 1,2 node0;
        # 3,4 node1 on TEST_MACHINE
        target = 3 if me <= 2 else 1
        v = a.on(target)[0]
        assert v == target
        return rt.my_stats["ptr_get_calls"]

    out = caf.launch(
        kernel, num_images=4, machine=TEST_MACHINE, use_shmem_ptr=True
    )
    assert all(o == 0 for o in out)  # cross-node: normal RMA path


def test_fastpath_is_cheaper_than_rma():
    def kernel():
        me = caf.this_image()
        a = caf.coarray((1024,), np.float64)
        caf.sync_all()
        t0 = current().clock.now
        if me == 1:
            for _ in range(10):
                a.on(2)[0:1024:2] = 1.0  # image 2 is on my node
        dt = current().clock.now - t0
        caf.sync_all()
        return dt

    slow = caf.launch(kernel, num_images=4, machine=TEST_MACHINE)[0]
    fast = caf.launch(
        kernel, num_images=4, machine=TEST_MACHINE, use_shmem_ptr=True
    )[0]
    assert fast < slow


def test_fastpath_unavailable_on_gasnet_backend():
    """GASNet exposes no shmem_ptr; the option degrades gracefully."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rt = caf.current_runtime()
        a = caf.coarray((4,), np.int64)
        a[:] = me
        caf.sync_all()
        v = a.on(me % n + 1)[0]
        assert v == me % n + 1
        return rt.my_stats["ptr_get_calls"]

    out = caf.launch(
        kernel,
        num_images=2,
        machine=TEST_MACHINE,
        backend="gasnet",
        use_shmem_ptr=True,
    )
    assert all(o == 0 for o in out)


def test_fastpath_scalar_and_whole_array():
    def kernel():
        me = caf.this_image()
        s = caf.coarray((), np.int64)
        s.local[()] = me * 3
        caf.sync_all()
        buddy = me + 1 if me % 2 == 1 else me - 1
        assert s.on(buddy).value == buddy * 3
        s.on(buddy).set(100 + me)
        caf.sync_all()
        assert int(s.local[()]) == 100 + buddy
        return True

    assert all(
        caf.launch(kernel, num_images=2, machine=TEST_MACHINE, use_shmem_ptr=True)
    )
