"""Virtual-time invariance of the batched RMA fast path.

Each scenario runs twice — batching on (default) and off (the
``REPRO_NO_BATCH=1`` escape hatch) — and must produce *identical*
virtual clocks, stats counters, and data.  Scenarios are restricted to
deterministic schedules (single RMA initiator for inter-node traffic,
or all-intra-node traffic, where no shared timeline ordering depends on
the thread scheduler).
"""

import numpy as np
import pytest

from repro import caf
from repro.bench.harness import UHCAF_CRAY_SHMEM_2DIM
from repro.bench.himeno import himeno_caf
from repro.caf.runtime import current_runtime
from repro.runtime.context import current


def _strided_roundtrip_kernel():
    """Image 1 puts/gets strided sections to image num_images (a
    different node when num_images > 16 on stampede)."""
    me, n = caf.this_image(), caf.num_images()
    a = caf.coarray((40, 40), np.float64)
    a[...] = 0.0
    caf.sync_all()
    if me == 1:
        tgt = n
        # strided in both dims -> line plan (iput path on native conduits)
        a.on(tgt).put((slice(0, 40, 2), slice(0, 40, 4)), np.arange(200.0).reshape(20, 10))
        # big contiguous runs -> rendezvous-sized putmem batch
        a.on(tgt).put((slice(0, 40, 2), slice(None)), np.arange(800.0).reshape(20, 40))
        got_lines = a.on(tgt).get((slice(1, 40, 3), slice(0, 40, 4)))
        got_runs = a.on(tgt).get((slice(0, 40, 2), slice(None)))
    else:
        got_lines = got_runs = None
    caf.sync_all()
    rt = current_runtime()
    stats = {
        k: v
        for k, v in rt.my_stats.items()
        if not k.startswith("plan_cache")  # cache warmth differs by design
    }
    return (
        current().clock.now,
        stats,
        a.local.copy(),
        None if got_lines is None else np.asarray(got_lines),
        None if got_runs is None else np.asarray(got_runs),
    )


def _run(monkeypatch, batched, fn, **kw):
    if batched:
        monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
    return caf.launch(fn, **kw)


def _assert_same(res_a, res_b):
    for (ca, sa, la, gla, gra), (cb, sb, lb, glb, grb) in zip(res_a, res_b):
        assert ca == cb  # virtual clock, bitwise
        assert sa == sb  # stats counters
        assert np.array_equal(la, lb)
        assert (gla is None) == (glb is None)
        if gla is not None:
            assert np.array_equal(gla, glb)
            assert np.array_equal(gra, grb)


@pytest.mark.parametrize(
    "profile,strided",
    [
        ("cray-shmem", "2dim"),  # native iput lines + rendezvous runs
        ("cray-shmem", "naive"),  # per-element runs
        ("mvapich2x-shmem", "2dim"),  # non-native iput -> per-element puts
        ("gasnet", "naive"),
    ],
)
def test_strided_rma_virtual_time_invariant(monkeypatch, profile, strided):
    kw = dict(num_images=17, machine="stampede", profile=profile, strided=strided)
    batched = _run(monkeypatch, True, _strided_roundtrip_kernel, **kw)
    oracle = _run(monkeypatch, False, _strided_roundtrip_kernel, **kw)
    _assert_same(batched, oracle)


def test_intra_node_rma_invariant(monkeypatch):
    """All-images intra-node traffic (no shared timelines => still
    deterministic with many initiators)."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((12, 12), np.float64)
        a[...] = float(me)
        caf.sync_all()
        nxt = me % n + 1
        a.on(nxt).put((slice(0, 12, 3), slice(0, 12, 2)), np.full((4, 6), me * 10.0))
        caf.sync_all()
        got = a.on(nxt).get((slice(0, 12, 3), slice(0, 12, 2)))
        caf.sync_all()
        rt = current_runtime()
        stats = {k: v for k, v in rt.my_stats.items() if not k.startswith("plan_cache")}
        return current().clock.now, stats, a.local.copy(), np.asarray(got), None

    kw = dict(num_images=4, machine="stampede", profile="cray-shmem", strided="2dim")
    batched = _run(monkeypatch, True, kernel, **kw)
    oracle = _run(monkeypatch, False, kernel, **kw)
    for (ca, sa, la, ga, _), (cb, sb, lb, gb, _) in zip(batched, oracle):
        assert ca == cb
        assert sa == sb
        assert np.array_equal(la, lb)
        assert np.array_equal(ga, gb)


def test_himeno_step_virtual_time_invariant(monkeypatch):
    """One Himeno halo-exchange cadence, 4 images on one node: gosa,
    MFLOPS and elapsed virtual time must match bit-for-bit."""
    kw = dict(
        machine="stampede",
        config=UHCAF_CRAY_SHMEM_2DIM,
        num_images=4,
        grid=(17, 17, 17),
        iterations=2,
    )
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    batched = himeno_caf(**kw)
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    oracle = himeno_caf(**kw)
    assert batched.gosa == oracle.gosa
    assert batched.elapsed_us == oracle.elapsed_us
    assert batched.mflops == oracle.mflops
