"""Runtime odds and ends: validation, stats, startup discipline."""

import numpy as np
import pytest

from repro import caf
from repro.caf.runtime import CafRuntime
from repro.runtime.launcher import Job


def test_apis_require_launch():
    """Using the CAF API outside a launched kernel fails clearly."""
    from repro.runtime.context import NotInSpmdRegion

    with pytest.raises(NotInSpmdRegion):
        caf.this_image()


def test_runtime_requires_startup():
    job = Job(1)
    rt = CafRuntime(job)

    def kernel():
        rt.sync_all()

    with pytest.raises(RuntimeError, match="not started"):
        job.run(kernel)


def test_sync_images_rejects_bad_image():
    def kernel():
        caf.sync_images([99])

    with pytest.raises(RuntimeError, match="out of range"):
        caf.launch(kernel, num_images=2)


def test_sync_images_with_self_in_list_is_harmless():
    def kernel():
        me = caf.this_image()
        caf.sync_images([me, me % caf.num_images() + 1])
        return True

    assert all(caf.launch(kernel, num_images=2))


def test_stats_merge_and_reset():
    def kernel():
        rt = caf.current_runtime()
        a = caf.coarray((4,), np.int64)
        caf.sync_all()
        a.on(1)[:] = [1, 2, 3, 4]
        caf.sync_all()
        merged = rt.stats["putmem_calls"]
        rt.reset_stats()
        return (merged, rt.stats["putmem_calls"])

    out = caf.launch(kernel, num_images=3)
    # every image put once; merged counter visible from any image
    assert any(m == 3 for m, _ in out)
    assert all(after == 0 for _, after in out)


def test_managed_byte_offset_math():
    def kernel():
        rt = caf.current_runtime()
        off = rt.managed_alloc(0, 64)
        assert rt.managed_byte_offset(off) == rt.managed_u8.byte_offset + off
        rt.managed_free(0, off)
        return True

    assert all(caf.launch(kernel, num_images=1))


def test_repr_mentions_configuration():
    job = Job(2)
    rt = CafRuntime(job, strided="naive", ordering="relaxed")
    text = repr(rt)
    assert "naive" in text and "relaxed" in text and "shmem" in text


def test_unknown_strided_policy_fails_at_use():
    def kernel():
        a = caf.coarray((8,), np.int64)
        caf.sync_all()
        a.on(1).put(slice(0, 8, 2), 1, algorithm="zigzag")

    with pytest.raises(RuntimeError, match="unknown algorithm"):
        caf.launch(kernel, num_images=1)


def test_launch_returns_per_image_values():
    out = caf.launch(lambda: caf.this_image() ** 2, num_images=4)
    assert out == [1, 4, 9, 16]


def test_kwargs_forwarded_to_kernel():
    def kernel(base, scale=1):
        return base + scale * caf.this_image()

    out = caf.launch(kernel, num_images=2, args=(100,), kwargs={"scale": 10})
    assert out == [110, 120]
