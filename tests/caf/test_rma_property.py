"""Property test: co-indexed RMA == NumPy slicing, for every algorithm
and backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import caf

shapes = st.lists(st.integers(1, 6), min_size=1, max_size=3).map(tuple)


@st.composite
def shape_key_payload(draw):
    shape = draw(shapes)
    key = []
    out_shape = []
    for extent in shape:
        kind = draw(st.sampled_from(["int", "slice"]))
        if kind == "int":
            key.append(draw(st.integers(0, extent - 1)))
        else:
            start = draw(st.integers(0, extent - 1))
            stop = draw(st.integers(start, extent))
            step = draw(st.integers(1, 3))
            key.append(slice(start, stop, step))
            out_shape.append(len(range(start, stop, step)))
    return shape, tuple(key), tuple(out_shape)


@settings(max_examples=25, deadline=None)
@given(
    data=shape_key_payload(),
    algo=st.sampled_from(["naive", "2dim", "alldim", "lastdim", "matrix", "auto"]),
)
def test_put_get_roundtrip_matches_numpy(data, algo):
    shape, key, out_shape = data

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray(shape, np.int64)
        a[...] = -5
        caf.sync_all()
        nxt = me % n + 1
        payload = (np.arange(int(np.prod(out_shape)) or 1)[: int(np.prod(out_shape))]).reshape(out_shape) + me * 1000
        a.on(nxt).put(key, payload, algorithm=algo)
        caf.sync_all()
        prev = (me - 2) % n + 1
        expect = np.full(shape, -5, dtype=np.int64)
        expect[key] = (
            np.arange(int(np.prod(out_shape)) or 1)[: int(np.prod(out_shape))]
        ).reshape(out_shape) + prev * 1000
        assert np.array_equal(a.local, expect), (a.local, expect)
        got = a.on(nxt).get(key, algorithm=algo)
        remote_expect = np.full(shape, -5, dtype=np.int64)
        remote_expect[key] = (
            np.arange(int(np.prod(out_shape)) or 1)[: int(np.prod(out_shape))]
        ).reshape(out_shape) + ((nxt - 2) % n + 1) * 1000
        assert np.array_equal(np.asarray(got), remote_expect[key])
        return True

    assert all(caf.launch(kernel, num_images=2, profile="cray-shmem"))


@pytest.mark.parametrize("backend", ["shmem", "gasnet", "mpi", "craycaf"])
def test_strided_roundtrip_all_backends(backend):
    """The same 3-D strided transfer gives identical bytes on every
    backend (cross-backend functional equivalence)."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((6, 7, 8), np.int64)
        a[...] = 0
        caf.sync_all()
        nxt = me % n + 1
        block = np.arange(3 * 3 * 4).reshape(3, 3, 4) + me
        a.on(nxt)[0:6:2, 1:7:2, 0:8:2] = block
        caf.sync_all()
        return a.local.copy()

    results = {}
    for b in [backend]:
        out = caf.launch(kernel, num_images=3, backend=b)
        results[b] = out
    prev_of = lambda img, n: (img - 2) % n + 1
    for out in results.values():
        for i, arr in enumerate(out):
            expect = np.zeros((6, 7, 8), dtype=np.int64)
            expect[0:6:2, 1:7:2, 0:8:2] = (
                np.arange(3 * 3 * 4).reshape(3, 3, 4) + prev_of(i + 1, 3)
            )
            assert np.array_equal(arr, expect)
