"""RMA ordering semantics (paper Section IV-B and Figure 4)."""

import numpy as np

from repro import caf
from repro.runtime.context import current
from tests.conftest import TEST_MACHINE


def test_figure4_program_is_correct_under_caf_ordering():
    """The paper's Figure 4: b -> a[2], then c = a[2] must see the new
    data; the runtime's implicit quiet makes it so."""

    def kernel():
        me = caf.this_image()
        a = caf.coarray((4,), np.int64)
        b = caf.coarray((4,), np.int64)
        c = caf.coarray((4,), np.int64)
        a[:] = 0
        b[:] = me * 7
        c[:] = -1
        caf.sync_all()
        if me == 1:
            a.on(2)[:] = b.local  # put
            got = a.on(2)[...]  # get from same location, same image
            c[:] = got
            assert list(c.local) == [7, 7, 7, 7]
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=2, machine=TEST_MACHINE))


def test_caf_ordering_quiets_after_put():
    """With ordering="caf" the pending-put set is empty after each
    co-indexed assignment (quiet inserted, paper Section IV-B)."""

    def kernel():
        me = caf.this_image()
        rt = caf.current_runtime()
        a = caf.coarray((1 << 12,), np.uint8)
        caf.sync_all()
        if me == 1:
            a.on(3)[:] = np.ones(1 << 12, dtype=np.uint8)
            assert rt.layer._pending[0] == 0.0  # quiet already ran
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=4, machine=TEST_MACHINE))


def test_relaxed_ordering_leaves_puts_pending():
    def kernel():
        me = caf.this_image()
        rt = caf.current_runtime()
        a = caf.coarray((1 << 12,), np.uint8)
        caf.sync_all()
        if me == 1:
            a.on(3)[:] = np.ones(1 << 12, dtype=np.uint8)
            assert rt.layer._pending[0] > 0.0  # still in flight
        caf.sync_all()
        return True

    assert all(
        caf.launch(kernel, num_images=4, machine=TEST_MACHINE, ordering="relaxed")
    )


def test_caf_ordering_costs_more_than_relaxed():
    """The ablation claim: statement-level quiets serialize transfers."""

    def kernel():
        me = caf.this_image()
        a = caf.coarray((1 << 14,), np.uint8)
        caf.sync_all()
        t0 = current().clock.now
        if me == 1:
            data = np.zeros(1 << 14, dtype=np.uint8)
            for _ in range(10):
                a.on(3)[:] = data
        caf.sync_all()
        return current().clock.now - t0

    strict = caf.launch(kernel, num_images=4, machine=TEST_MACHINE)[0]
    relaxed = caf.launch(
        kernel, num_images=4, machine=TEST_MACHINE, ordering="relaxed"
    )[0]
    assert strict > relaxed


def test_invalid_ordering_rejected():
    import pytest

    with pytest.raises(ValueError, match="ordering"):
        caf.launch(lambda: None, num_images=1, ordering="strict")
