"""Strided transfer planning: the paper's Section IV-C algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caf.strided import (
    ALGORITHMS,
    DimSel,
    make_plan,
    normalize_selection,
    plan_2dim,
    plan_alldim,
    plan_contiguous,
    plan_lastdim,
    plan_matrix,
    plan_naive,
    selection_offsets,
)


def sels_for(shape, key):
    sels, _ = normalize_selection(shape, key)
    return sels


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def test_normalize_full_defaults():
    sels, rshape = normalize_selection((4, 6), (slice(None),))
    assert sels == [DimSel(0, 4, 1), DimSel(0, 6, 1)]
    assert rshape == (4, 6)


def test_normalize_ints_drop_dims():
    sels, rshape = normalize_selection((4, 6, 8), (2, slice(1, 5), 3))
    assert sels == [DimSel(2, 1, 1), DimSel(1, 4, 1), DimSel(3, 1, 1)]
    assert rshape == (4,)


def test_normalize_negative_index():
    sels, _ = normalize_selection((10,), (-1,))
    assert sels == [DimSel(9, 1, 1)]


def test_normalize_ellipsis():
    sels, rshape = normalize_selection((2, 3, 4), (Ellipsis, 1))
    assert rshape == (2, 3)
    assert sels[2] == DimSel(1, 1, 1)


def test_normalize_rejects():
    with pytest.raises(IndexError):
        normalize_selection((4,), (5,))
    with pytest.raises(IndexError):
        normalize_selection((4,), (0, 0))
    with pytest.raises(IndexError):
        normalize_selection((4,), (slice(None, None, -1),))
    with pytest.raises(TypeError):
        normalize_selection((4,), ("x",))
    with pytest.raises(IndexError):
        normalize_selection((4, 4), (Ellipsis, Ellipsis))


def test_clamped_slices():
    sels, rshape = normalize_selection((5,), (slice(2, 100, 2),))
    assert sels == [DimSel(2, 2, 2)]
    assert rshape == (2,)


# ---------------------------------------------------------------------------
# The paper's running example: X(100,100,100), section (::2, :80:2, ::4).
# Fortran dim order (fastest first): 50, 40, 25 elements.  In C order the
# equivalent array is indexed [::4, 0:80:2, ::2] with the fastest axis
# last: counts (25, 40, 50).
# ---------------------------------------------------------------------------

PAPER_SHAPE = (100, 100, 100)
PAPER_KEY = (slice(0, 100, 4), slice(0, 80, 2), slice(0, 100, 2))


def test_paper_example_naive_call_count():
    """Naive: one call per element = 50 * 40 * 25 = 50,000."""
    plan = plan_naive(sels_for(PAPER_SHAPE, PAPER_KEY), PAPER_SHAPE)
    assert plan.num_calls == 50 * 40 * 25
    assert plan.total_elems == 50000


def test_paper_example_2dim_call_count():
    """2dim: base = dimension with 50 strided elements -> 1 * 40 * 25."""
    plan = plan_2dim(sels_for(PAPER_SHAPE, PAPER_KEY), PAPER_SHAPE)
    assert plan.num_calls == 40 * 25
    assert plan.base_dim == 2  # fastest C axis == Fortran dim 1
    assert all(line.count == 50 for line in plan.lines)
    assert all(line.stride == 2 for line in plan.lines)


def test_base_dim_restricted_to_two_fastest():
    """If the slowest axis has the most elements, 2dim must NOT pick it
    (the paper's locality tradeoff) — but alldim (ablation) does."""
    shape = (100, 8, 8)
    key = (slice(0, 100, 2), slice(0, 8, 2), slice(0, 8, 2))  # counts 50,4,4
    sels = sels_for(shape, key)
    p2 = plan_2dim(sels, shape)
    assert p2.base_dim in (1, 2)
    assert p2.num_calls == 50 * 4
    pall = plan_alldim(sels, shape)
    assert pall.base_dim == 0
    assert pall.num_calls == 4 * 4


def test_2dim_picks_larger_of_last_two():
    shape = (16, 16, 16)
    key = (slice(None), slice(0, 16, 2), slice(0, 16, 4))  # counts 16,8,4
    plan = plan_2dim(sels_for(shape, key), shape)
    assert plan.base_dim == 1
    assert plan.num_calls == 16 * 4


def test_lastdim_always_fastest_axis():
    shape = (16, 16, 16)
    key = (slice(None), slice(0, 16, 2), slice(0, 16, 4))
    plan = plan_lastdim(sels_for(shape, key), shape)
    assert plan.base_dim == 2
    assert plan.num_calls == 16 * 8


def test_contiguous_whole_array():
    shape = (4, 5)
    plan = plan_contiguous(sels_for(shape, (slice(None),)), shape)
    assert plan is not None
    assert plan.runs == tuple([type(plan.runs[0])(0, 20)])


def test_contiguous_row_block():
    shape = (4, 5)
    plan = plan_contiguous(sels_for(shape, (slice(1, 3),)), shape)
    assert plan is not None
    assert len(plan.runs) == 1
    assert plan.runs[0].offset == 5 and plan.runs[0].length == 10


def test_contiguous_single_row_of_2d():
    shape = (4, 5)
    plan = plan_contiguous(sels_for(shape, (2, slice(None))), shape)
    assert plan is not None
    assert plan.runs[0].offset == 10 and plan.runs[0].length == 5


def test_non_contiguous_detected():
    shape = (4, 5)
    assert plan_contiguous(sels_for(shape, (slice(0, 4, 2),)), shape) is None
    assert plan_contiguous(sels_for(shape, (slice(None), slice(0, 4))), shape) is None


def test_naive_uses_runs_when_inner_contiguous():
    shape = (6, 8)
    key = (slice(0, 6, 2), slice(0, 8))
    plan = plan_naive(sels_for(shape, key), shape)
    assert plan.num_calls == 3  # one run per selected row
    assert all(r.length == 8 for r in plan.runs)


def test_matrix_prefers_runs():
    shape = (6, 4, 8)
    key = (slice(None), 2, slice(None))  # halo plane: contiguous pencils
    plan = plan_matrix(sels_for(shape, key), shape)
    assert plan.runs and not plan.lines
    assert plan.num_calls == 6
    # while 2dim would issue lines
    p2 = plan_2dim(sels_for(shape, key), shape)
    assert p2.lines


def test_matrix_falls_back_to_lines_on_strided_inner():
    shape = (8, 8)
    key = (slice(None), slice(0, 8, 2))
    plan = plan_matrix(sels_for(shape, key), shape)
    assert plan.lines


def test_auto_policy():
    shape = (8, 8)
    strided_key = (slice(0, 8, 2), slice(0, 8, 2))
    sels = sels_for(shape, strided_key)
    assert make_plan(sels, shape, "auto", iput_native=True).lines
    assert make_plan(sels, shape, "auto", iput_native=False).runs  # naive
    contig_inner = sels_for(shape, (slice(0, 8, 2), slice(None)))
    assert make_plan(contig_inner, shape, "auto", iput_native=True).runs


def test_make_plan_contiguous_short_circuits_everything():
    shape = (4, 4)
    sels = sels_for(shape, (slice(None),))
    for algo in ("naive", "2dim", "alldim", "lastdim", "matrix", "auto"):
        plan = make_plan(sels, shape, algo, iput_native=True)
        assert plan.algorithm == "contiguous"
        assert plan.num_calls == 1


def test_make_plan_rejects_unknown():
    shape = (4,)
    with pytest.raises(ValueError):
        make_plan(sels_for(shape, (slice(None),)), shape, "zigzag", iput_native=True)
    with pytest.raises(ValueError):
        make_plan(
            sels_for(shape, (slice(0, 4, 2),)), shape, "contiguous", iput_native=True
        )


def test_empty_selection_plans():
    shape = (4, 4)
    sels = sels_for(shape, (slice(0, 0), slice(None)))
    for algo in ALGORITHMS[:-1]:
        plan = make_plan(sels, shape, algo, iput_native=True)
        assert plan.num_calls == 0 or plan.total_elems == 0


# ---------------------------------------------------------------------------
# Property: every plan covers exactly the NumPy-selected offsets,
# in a consistent order, with no overlap.
# ---------------------------------------------------------------------------

shapes = st.lists(st.integers(1, 7), min_size=1, max_size=4).map(tuple)


@st.composite
def shape_and_key(draw):
    shape = draw(shapes)
    key = []
    for extent in shape:
        kind = draw(st.sampled_from(["int", "slice", "full"]))
        if kind == "int":
            key.append(draw(st.integers(0, extent - 1)))
        elif kind == "full":
            key.append(slice(None))
        else:
            start = draw(st.integers(0, extent - 1))
            stop = draw(st.integers(start, extent))
            step = draw(st.integers(1, 3))
            key.append(slice(start, stop, step))
    return shape, tuple(key)


def plan_offsets(plan, sels):
    """Flatten the offsets a plan touches, in payload order."""
    if plan.lines:
        # payload order: remaining dims in C order, base dim last
        out = []
        for line in plan.lines:
            out.extend(line.offset + i * line.stride for i in range(line.count))
        return np.array(out, dtype=np.int64)
    out = []
    for run in plan.runs:
        out.extend(range(run.offset, run.offset + run.length))
    return np.array(out, dtype=np.int64)


@settings(max_examples=120, deadline=None)
@given(data=shape_and_key(), algo=st.sampled_from(["naive", "2dim", "alldim", "lastdim", "matrix", "auto"]))
def test_plans_cover_exactly_the_selection(data, algo):
    shape, key = data
    sels, _ = normalize_selection(shape, key)
    oracle = selection_offsets(sels, shape)
    plan = make_plan(sels, shape, algo, iput_native=True)
    got = plan_offsets(plan, sels)
    # Same multiset, no duplicates, and inside the array.
    assert len(got) == len(oracle)
    assert len(np.unique(got)) == len(got)
    assert sorted(got.tolist()) == sorted(oracle.tolist())
    total = int(np.prod(shape))
    if len(got):
        assert got.min() >= 0 and got.max() < total


@settings(max_examples=60, deadline=None)
@given(data=shape_and_key())
def test_run_plans_preserve_c_order(data):
    """Run-based plans must emit offsets in C iteration order so payload
    chunks align without reordering."""
    shape, key = data
    sels, _ = normalize_selection(shape, key)
    oracle = selection_offsets(sels, shape)
    plan = make_plan(sels, shape, "naive", iput_native=False)
    got = plan_offsets(plan, sels)
    assert got.tolist() == oracle.tolist()
