"""Bit-identity of the vectorized data plane against both oracles.

Every workload runs three ways — full fast path (default), plain
batched engine (``REPRO_NO_VECTOR=1``), and the per-call loop
(``REPRO_NO_BATCH=1``) — and must produce identical virtual clocks,
stats counters, local buffers, and fetched sections, bit for bit.
A hypothesis property drives random shapes, slices, dtypes, and
strided-translation policies through the comparison; the deterministic
tests pin the short-circuit paths (zero-length and single-call plans)
and the sanitizer on the fast path.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import caf
from repro.caf.runtime import current_runtime
from repro.runtime.context import current

_FLAGS = ("REPRO_NO_BATCH", "REPRO_NO_VECTOR")


@contextmanager
def _mode(no_batch=False, no_vector=False):
    saved = {f: os.environ.pop(f, None) for f in _FLAGS}
    try:
        if no_batch:
            os.environ["REPRO_NO_BATCH"] = "1"
        if no_vector:
            os.environ["REPRO_NO_VECTOR"] = "1"
        yield
    finally:
        for f in _FLAGS:
            os.environ.pop(f, None)
            if saved[f] is not None:
                os.environ[f] = saved[f]


def _run_three_ways(fn, **kw):
    with _mode():
        fast = caf.launch(fn, **kw)
    with _mode(no_vector=True):
        novector = caf.launch(fn, **kw)
    with _mode(no_batch=True):
        oracle = caf.launch(fn, **kw)
    return fast, novector, oracle


def _section_kernel(shape, key, dtype_name):
    """Image 1 writes a deterministic pattern to the section on image 2,
    reads it back, and every image fingerprints its state."""
    dtype = np.dtype(dtype_name)
    a = caf.coarray(shape, dtype)
    a[...] = 0
    caf.sync_all()
    got = None
    if caf.this_image() == 1:
        sel_shape = tuple(len(range(*s.indices(d))) for s, d in zip(key, shape))
        n = int(np.prod(sel_shape))
        data = (np.arange(n) % 97).reshape(sel_shape).astype(dtype)
        a.on(2)[key] = data
        got = np.asarray(a.on(2)[key])
    caf.sync_all()
    stats = {
        k: v
        for k, v in current_runtime().my_stats.items()
        if not k.startswith("plan_cache")
    }
    return (
        current().clock.now,
        stats,
        a.local.copy(),
        got,
    )


def _assert_identical(results_a, results_b):
    for (ca, sa, la, ga), (cb, sb, lb, gb) in zip(results_a, results_b):
        assert ca == cb  # virtual clock, bitwise
        assert sa == sb  # stats counters
        assert la.tobytes() == lb.tobytes()  # destination bytes
        assert (ga is None) == (gb is None)
        if ga is not None:
            assert ga.tobytes() == gb.tobytes()


@st.composite
def sections(draw):
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(2, 9)) for _ in range(ndim))
    key = []
    for d in shape:
        start = draw(st.integers(0, d - 1))
        stop = draw(st.integers(start, d))  # may be empty
        step = draw(st.integers(1, 3))
        key.append(slice(start, stop, step))
    dtype_name = draw(st.sampled_from(["u1", "i2", "f4", "f8", "i8"]))
    policy = draw(st.sampled_from(["naive", "2dim", "alldim", "lastdim", "auto"]))
    return shape, tuple(key), dtype_name, policy


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sections())
def test_random_sections_bit_identical(params):
    shape, key, dtype_name, policy = params
    kw = dict(
        num_images=2,
        machine="stampede",
        profile="cray-shmem",
        strided=policy,
        args=(shape, key, dtype_name),
    )
    fast, novector, oracle = _run_three_ways(_section_kernel, **kw)
    _assert_identical(fast, oracle)
    _assert_identical(fast, novector)


@pytest.mark.parametrize("profile", ["cray-shmem", "mvapich2x-shmem", "gasnet"])
def test_inter_node_sections_bit_identical(profile):
    """One inter-node initiator (PEs 0 and 17 live on different nodes),
    shared-timeline pricing paths included."""

    def kernel():
        a = caf.coarray((16, 12), np.float64)
        a[...] = 0.0
        caf.sync_all()
        got = None
        if caf.this_image() == 1:
            tgt = caf.num_images()
            a.on(tgt)[1:15:2, 0:12:3] = np.arange(28.0).reshape(7, 4)
            got = np.asarray(a.on(tgt)[0:16:3, 2:11:2])
        caf.sync_all()
        stats = {
            k: v
            for k, v in current_runtime().my_stats.items()
            if not k.startswith("plan_cache")
        }
        return current().clock.now, stats, a.local.copy(), got

    kw = dict(num_images=17, machine="stampede", profile=profile, strided="2dim")
    fast, novector, oracle = _run_three_ways(kernel, **kw)
    _assert_identical(fast, oracle)
    _assert_identical(fast, novector)


# ---------------------------------------------------------------------------
# Short-circuit paths: zero-length and single-call plans
# ---------------------------------------------------------------------------


def test_zero_length_section_is_free_and_identical():
    def kernel():
        a = caf.coarray((10, 10), np.float64)
        a[...] = 1.0
        caf.sync_all()
        got = None
        if caf.this_image() == 1:
            before = current().clock.now
            a.on(2)[3:3, :] = np.empty((0, 10))
            got = np.asarray(a.on(2)[5:5, 0:10:2])
            assert got.shape == (0, 5)
            assert current().clock.now == before  # nothing priced
        caf.sync_all()
        stats = {
            k: v
            for k, v in current_runtime().my_stats.items()
            if not k.startswith("plan_cache")
        }
        return current().clock.now, stats, a.local.copy(), got

    kw = dict(num_images=2, machine="stampede", profile="cray-shmem", strided="2dim")
    fast, novector, oracle = _run_three_ways(kernel, **kw)
    _assert_identical(fast, oracle)
    _assert_identical(fast, novector)


@pytest.mark.parametrize("profile", ["cray-shmem", "mvapich2x-shmem"])
def test_single_call_plans_bit_identical(profile):
    """Single-line and single-run plans take the scalar short-circuit
    (no index arrays); timing, stats, and data must still match both
    oracles exactly."""

    def kernel():
        a = caf.coarray((12, 12), np.float64)
        a[...] = 0.0
        caf.sync_all()
        got = None
        if caf.this_image() == 1:
            a.on(2)[4, 0:12:3] = np.arange(4.0)          # one strided line
            a.on(2)[7, :] = np.arange(12.0)              # one contiguous run
            a.on(2)[3, 5] = 42.0                         # single element
            got = (
                np.asarray(a.on(2)[4, 0:12:3]),
                np.asarray(a.on(2)[7, :]),
                float(a.on(2)[3, 5]),
            )
        caf.sync_all()
        stats = {
            k: v
            for k, v in current_runtime().my_stats.items()
            if not k.startswith("plan_cache")
        }
        return current().clock.now, stats, a.local.copy(), got

    kw = dict(num_images=2, machine="stampede", profile=profile, strided="2dim")
    fast, novector, oracle = _run_three_ways(kernel, **kw)
    for (ca, sa, la, ga), (cb, sb, lb, gb) in zip(fast, oracle):
        assert ca == cb and sa == sb and la.tobytes() == lb.tobytes()
        if ga is not None:
            assert ga[0].tobytes() == gb[0].tobytes()
            assert ga[1].tobytes() == gb[1].tobytes()
            assert ga[2] == gb[2]
    _assert_identical(
        [(c, s, l, None) for c, s, l, _ in fast],
        [(c, s, l, None) for c, s, l, _ in novector],
    )


def test_single_call_stats_counts():
    """The short-circuits must still count one logical call apiece."""

    def kernel():
        a = caf.coarray((12, 12), np.float64)
        a[...] = 0.0
        caf.sync_all()
        stats = {}
        if caf.this_image() == 1:
            a.on(2)[4, 0:12:3] = np.arange(4.0)   # -> 1 iput
            a.on(2)[7, :] = np.arange(12.0)       # -> 1 putmem
            _ = a.on(2)[4, 0:12:3]                # -> 1 iget
            _ = a.on(2)[7, :]                     # -> 1 getmem
            stats = dict(current_runtime().my_stats)
        caf.sync_all()
        return stats

    stats = caf.launch(
        kernel, 2, "stampede", profile="cray-shmem", strided="2dim"
    )[0]
    assert stats["iput_calls"] == 1
    assert stats["putmem_calls"] == 1
    assert stats["iget_calls"] == 1
    assert stats["getmem_calls"] == 1
    assert stats["put_elems"] == 16
    assert stats["get_elems"] == 16


# ---------------------------------------------------------------------------
# Sanitizer on the fast path (deferred footprints must resolve)
# ---------------------------------------------------------------------------


def test_sanitizer_passes_on_fast_path():
    """capture_sync tracing on the vectorized path records deferred
    footprint descriptors; the happens-before sanitizer must see them
    fully materialized and find nothing wrong in a clean program."""

    def kernel():
        a = caf.coarray((16, 16), np.float64)
        a[...] = 0.0
        caf.sync_all()
        if caf.this_image() == 1:
            a.on(2)[0:16:2, 0:16:4] = np.arange(32.0).reshape(8, 4)
            a.on(2)[1, :] = np.arange(16.0)
        caf.sync_all()
        if caf.this_image() == 2:
            _ = a.on(1)[0:16:2, 0:16:4]
        caf.sync_all()
        return True

    with _mode():  # explicit: fast path on
        assert all(
            caf.launch(
                kernel, 2, "stampede",
                profile="cray-shmem", strided="2dim", sanitize=True,
            )
        )
