"""Backend construction and cross-backend behaviour."""

import numpy as np
import pytest

from repro import caf
from repro.caf.backends import BACKENDS, make_backend
from repro.runtime.launcher import Job
from repro.sim.netmodel import CRAY_SHMEM, DMAPP_CAF, GASNET, MPI3


def test_backend_defaults():
    job = Job(2)
    assert make_backend(job, "shmem").lock_algorithm == "mcs"
    assert make_backend(job, "gasnet").lock_algorithm == "mcs"
    cray = make_backend(Job(2), "craycaf")
    assert cray.lock_algorithm == "tas"
    assert cray.strided_default == "lastdim"
    assert cray.layer.profile is DMAPP_CAF


def test_backend_profiles():
    assert make_backend(Job(2, "titan"), "shmem").layer.profile is CRAY_SHMEM
    assert make_backend(Job(2), "gasnet").layer.profile is GASNET
    assert make_backend(Job(2), "mpi").layer.profile is MPI3


def test_profile_override():
    be = make_backend(Job(2, "titan"), "shmem", profile="mvapich2x-shmem")
    assert be.layer.profile.name == "MVAPICH2-X SHMEM"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown CAF backend"):
        make_backend(Job(1), "ucx")
    with pytest.raises(ValueError, match="lock algorithm"):
        make_backend(Job(1), "shmem", lock_algorithm="ticket")


def test_backends_registry():
    assert set(BACKENDS) == {"shmem", "gasnet", "mpi", "craycaf"}


@pytest.mark.parametrize("backend", BACKENDS)
def test_same_program_same_answers_every_backend(backend):
    """Functional equivalence: the paper's retargetability claim."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        x = caf.coarray((8,), np.int64)
        x[:] = np.arange(8) * me
        caf.sync_all()
        acc = np.zeros(8, dtype=np.int64)
        for img in range(1, n + 1):
            acc += x.on(img)[...]
        caf.co_sum(acc)
        atom = caf.coarray((1,), np.int64)
        caf.sync_all()
        caf.atomic_add(atom, 1, value=me)
        caf.sync_all()
        total = caf.atomic_ref(atom, 1)
        return (acc.tolist(), total)

    out = caf.launch(kernel, num_images=3, backend=backend)
    expect_acc = (np.arange(8) * 6 * 3).tolist()
    assert all(o == (expect_acc, 6) for o in out)


def test_backend_timing_ordering_shmem_fastest():
    """On the same machine, the shmem backend's clocks finish earliest
    and mpi's latest for a put-heavy kernel (Figs 2/6/7 mechanism)."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        x = caf.coarray((256,), np.int64)
        caf.sync_all()
        for _ in range(20):
            x.on(me % n + 1)[:] = 1
        caf.sync_all()
        from repro.runtime.context import current

        return current().clock.now

    times = {}
    for backend in ("shmem", "gasnet", "mpi"):
        times[backend] = max(caf.launch(kernel, num_images=18, backend=backend))
    assert times["shmem"] < times["gasnet"] < times["mpi"]


def test_runtime_reattach_rejected():
    job = Job(2)
    caf.attach(job, backend="shmem")
    with pytest.raises(ValueError, match="already attached"):
        caf.attach(job, backend="gasnet")
    # parameterless attach returns the existing runtime
    assert caf.attach(job).backend.name == "shmem"


def test_hybrid_caf_plus_shmem():
    """Paper Section I: OpenSHMEM calls directly inside a CAF program."""
    from repro import shmem

    def kernel():
        me = caf.this_image()
        x = caf.coarray((4,), np.int64)
        x[:] = me
        caf.sync_all()
        # drop below CAF: raw shmem ops on the same job
        sym = shmem.shmalloc_array((4,), np.int64)
        shmem.put(sym, x.local, pe=(me % caf.num_images()))
        shmem.barrier_all()
        return list(sym.local)

    out = caf.launch(kernel, num_images=3, backend="shmem")
    assert out == [[3] * 4, [1] * 4, [2] * 4]
