"""Non-symmetric allocation and packed remote pointers (Section IV-A/D)."""

import numpy as np
import pytest

from repro import caf
from repro.util.bitpack import unpack_remote_pointer


def test_nonsymmetric_offsets_differ_across_images():
    """The whole point: different images allocate at different offsets
    in their managed heaps."""

    def kernel():
        me = caf.this_image()
        # skew allocation patterns per image
        for _ in range(me):
            caf.nonsymmetric((8,), np.int64)
        obj = caf.nonsymmetric((4,), np.int64)
        return obj.offset

    out = caf.launch(kernel, num_images=3)
    assert len(set(out)) == 3


def test_remote_pointer_roundtrip_access():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rt = caf.current_runtime()
        obj = caf.nonsymmetric((5,), np.float64)
        obj.local[:] = me * 1.5
        ptrs = caf.coarray((1,), np.uint64)
        ptrs[:] = obj.packed()
        caf.sync_all()
        nxt = me % n + 1
        remote = int(ptrs.on(nxt)[0])
        vals = caf.get_remote(rt, remote, (5,), np.float64)
        assert np.allclose(vals, nxt * 1.5)
        decoded = unpack_remote_pointer(remote)
        assert decoded.image == nxt
        return True

    assert all(caf.launch(kernel, num_images=3))


def test_put_remote_visible_to_owner():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rt = caf.current_runtime()
        obj = caf.nonsymmetric((3,), np.int64)
        obj.local[:] = 0
        ptrs = caf.coarray((1,), np.uint64)
        ptrs[:] = obj.packed()
        caf.sync_all()
        nxt = me % n + 1
        caf.put_remote(rt, int(ptrs.on(nxt)[0]), [me, me, me], np.int64)
        caf.sync_all()
        prev = (me - 2) % n + 1
        assert list(obj.local) == [prev] * 3
        return True

    assert all(caf.launch(kernel, num_images=4))


def test_atomic_remote_on_qnode_style_word():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        rt = caf.current_runtime()
        word = caf.nonsymmetric((1,), np.uint64)
        word.local[:] = 0
        ptrs = caf.coarray((1,), np.uint64)
        ptrs[:] = word.packed()
        caf.sync_all()
        owner_ptr = int(ptrs.on(1)[0])
        caf.atomic_remote(rt, owner_ptr, "fadd", 1)
        caf.sync_all()
        return int(word.local[0]) if me == 1 else None

    out = caf.launch(kernel, num_images=4)
    assert out[0] == 4


def test_local_view_restricted_to_owner():
    def kernel():
        me = caf.this_image()
        obj = caf.nonsymmetric((2,), np.int64)
        objs = {}  # simulate leaking the handle object cross-image via
        # python sharing: construct a second image's access attempt
        return obj.owner_image == me

    assert all(caf.launch(kernel, num_images=2))


def test_free_returns_space():
    def kernel():
        rt = caf.current_runtime()
        me_pe = caf.this_image() - 1
        before = rt._managed_alloc[me_pe].bytes_allocated
        obj = caf.nonsymmetric((1024,), np.float64)
        assert rt._managed_alloc[me_pe].bytes_allocated > before
        obj.free()
        assert rt._managed_alloc[me_pe].bytes_allocated == before
        try:
            _ = obj.local
        except caf.CafError:
            return True
        return False

    assert all(caf.launch(kernel, num_images=2))


def test_nil_pointer_dereference_rejected():
    def kernel():
        rt = caf.current_runtime()
        caf.get_remote(rt, 0, (1,), np.int64)

    with pytest.raises(RuntimeError, match="nil"):
        caf.launch(kernel, num_images=1)


def test_misaligned_atomic_pointer_rejected():
    def kernel():
        rt = caf.current_runtime()
        ptr = caf.pack_remote_pointer(1, 4)  # not 8-aligned
        caf.atomic_remote(rt, ptr, "fetch")

    with pytest.raises(RuntimeError, match="misaligned"):
        caf.launch(kernel, num_images=1)


def test_managed_heap_exhaustion():
    def kernel():
        caf.nonsymmetric((1 << 22,), np.uint8)

    with pytest.raises(RuntimeError, match="cannot allocate"):
        caf.launch(kernel, num_images=1, managed_heap_bytes=1 << 12)


def test_managed_heap_must_fit_pointer_offset():
    from repro.runtime.launcher import Job
    from repro.caf.runtime import CafRuntime

    job = Job(1, heap_bytes=1 << 20)
    with pytest.raises(ValueError, match="36-bit"):
        CafRuntime(job, managed_heap_bytes=1 << 40)
