"""CAF collectives: co_sum / co_min / co_max / co_prod / co_reduce /
co_broadcast over 1-sided communication."""

import numpy as np
import pytest

from repro import caf


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7])
def test_co_sum_all_images(n):
    def kernel():
        me = caf.this_image()
        arr = np.array([me, 2.0 * me, -me], dtype=np.float64)
        caf.co_sum(arr)
        return arr.tolist()

    out = caf.launch(kernel, num_images=n)
    tot = sum(range(1, n + 1))
    assert all(o == [tot, 2.0 * tot, -tot] for o in out)


def test_co_sum_result_image_only():
    def kernel():
        me = caf.this_image()
        arr = np.array([float(me)])
        caf.co_sum(arr, result_image=2)
        return float(arr[0])

    out = caf.launch(kernel, num_images=4)
    assert out[1] == 10.0  # image 2 holds the result


@pytest.mark.parametrize(
    "algo", ["linear", "binomial", "recdbl", "ring", "hier", None]
)
def test_co_sum_result_image_semantics(algo, monkeypatch):
    """``result_image=j``: image j holds the exact reduction; other
    images' arrays become undefined per the Fortran standard (they hold
    *some* value — don't pin it), but shape and dtype are preserved.
    Holds under every forced algorithm and under auto-selection."""
    if algo is not None:
        monkeypatch.setenv("REPRO_COLLECTIVE", algo)
    else:
        monkeypatch.delenv("REPRO_COLLECTIVE", raising=False)

    def kernel():
        me = caf.this_image()
        arr = np.array([[me, 10 * me], [100 * me, -me]], dtype=np.int64)
        caf.co_sum(arr, result_image=3)
        return arr

    out = caf.launch(kernel, num_images=6)
    tot = sum(range(1, 7))
    expect = np.array([[tot, 10 * tot], [100 * tot, -tot]], dtype=np.int64)
    assert np.array_equal(out[2], expect), algo  # image 3 == index 2
    for o in out:
        assert o.shape == (2, 2) and o.dtype == np.int64


def test_co_sum_result_image_out_of_range():
    def kernel():
        caf.co_sum(np.array([1.0]), result_image=9)

    with pytest.raises(RuntimeError, match="out of range"):
        caf.launch(kernel, num_images=2)


def test_co_min_max_prod():
    def kernel():
        me = caf.this_image()
        a = np.array([float(me)])
        b = np.array([float(me)])
        c = np.array([float(me)])
        caf.co_min(a)
        caf.co_max(b)
        caf.co_prod(c)
        return (a[0], b[0], c[0])

    out = caf.launch(kernel, num_images=4)
    assert all(o == (1.0, 4.0, 24.0) for o in out)


def test_co_reduce_custom_op():
    def kernel():
        me = caf.this_image()
        arr = np.array([me, me + 10], dtype=np.int64)
        caf.co_reduce(arr, lambda a, b: np.maximum(a, b) - 0)
        return arr.tolist()

    out = caf.launch(kernel, num_images=3)
    assert all(o == [3, 13] for o in out)


def test_co_broadcast():
    def kernel():
        me = caf.this_image()
        arr = np.zeros(4)
        if me == 3:
            arr[:] = [1.0, 2.0, 3.0, 4.0]
        caf.co_broadcast(arr, source_image=3)
        return arr.tolist()

    out = caf.launch(kernel, num_images=5)
    assert all(o == [1.0, 2.0, 3.0, 4.0] for o in out)


def test_co_broadcast_from_image_1():
    def kernel():
        me = caf.this_image()
        arr = np.array([me * 1.0])
        caf.co_broadcast(arr, source_image=1)
        return float(arr[0])

    out = caf.launch(kernel, num_images=4)
    assert out == [1.0, 1.0, 1.0, 1.0]


def test_collectives_on_multidim_arrays():
    def kernel():
        me = caf.this_image()
        arr = np.full((2, 3), float(me))
        caf.co_sum(arr)
        return arr

    out = caf.launch(kernel, num_images=3)
    assert all(np.array_equal(o, np.full((2, 3), 6.0)) for o in out)


def test_integer_dtype_collectives():
    def kernel():
        me = caf.this_image()
        arr = np.array([me, me * me], dtype=np.int64)
        caf.co_sum(arr)
        return arr.tolist()

    out = caf.launch(kernel, num_images=3)
    assert all(o == [6, 14] for o in out)


def test_non_array_rejected():
    def kernel():
        caf.co_sum([1.0, 2.0])

    with pytest.raises(RuntimeError, match="NumPy arrays"):
        caf.launch(kernel, num_images=1)


def test_works_on_gasnet_backend():
    """Collectives use only 1-sided primitives (paper's footnote), so
    they work over a layer with no native reduction support."""

    def kernel():
        me = caf.this_image()
        arr = np.array([float(me)])
        caf.co_sum(arr)
        return float(arr[0])

    out = caf.launch(kernel, num_images=4, backend="gasnet")
    assert out == [10.0] * 4
