"""Codimension arithmetic (corank > 1 coarrays)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caf.codimension import Codimensions


def test_corank_one_star():
    cd = Codimensions()  # [*]
    assert cd.corank == 1
    assert cd.image_index((1,), num_images=4) == 1
    assert cd.image_index((4,), num_images=4) == 4
    assert cd.image_index((5,), num_images=4) == 0  # beyond num_images
    assert cd.this_image(3, num_images=4) == (3,)


def test_two_by_star_grid():
    cd = Codimensions(extents=(2,))  # [2, *]
    # column-major: first codimension varies fastest
    assert cd.image_index((1, 1), 6) == 1
    assert cd.image_index((2, 1), 6) == 2
    assert cd.image_index((1, 2), 6) == 3
    assert cd.image_index((2, 3), 6) == 6
    assert cd.this_image(5, 6) == (1, 3)


def test_fortran_standard_example():
    """F2008-style: codimension [2,3,*] with 10 images."""
    cd = Codimensions(extents=(2, 3))
    assert cd.image_index((1, 1, 1), 10) == 1
    assert cd.image_index((2, 1, 1), 10) == 2
    assert cd.image_index((1, 2, 1), 10) == 3
    assert cd.image_index((2, 3, 1), 10) == 6
    assert cd.image_index((1, 1, 2), 10) == 7
    assert cd.image_index((2, 2, 2), 10) == 10
    assert cd.image_index((1, 3, 2), 10) == 0  # image 11 does not exist
    assert cd.this_image(10, 10) == (2, 2, 2)
    assert cd.max_last_cosubscript(10) == 2


def test_lower_bounds():
    cd = Codimensions(extents=(2,), lower_bounds=(0, -1))  # [0:1, -1:*]
    assert cd.image_index((0, -1), 8) == 1
    assert cd.image_index((1, -1), 8) == 2
    assert cd.image_index((0, 0), 8) == 3
    assert cd.this_image(3, 8) == (0, 0)
    assert cd.image_index((-1, -1), 8) == 0  # below the lower bound


def test_out_of_extent_cosubscript_gives_zero():
    cd = Codimensions(extents=(2,))
    assert cd.image_index((3, 1), 8) == 0


def test_validation():
    with pytest.raises(ValueError):
        Codimensions(extents=(0,))
    with pytest.raises(ValueError):
        Codimensions(extents=(2,), lower_bounds=(1,))
    cd = Codimensions(extents=(2,))
    with pytest.raises(ValueError):
        cd.image_index((1,), 4)  # wrong corank
    with pytest.raises(ValueError):
        cd.this_image(0, 4)
    with pytest.raises(ValueError):
        cd.image_index((1, 1), 0)


@settings(max_examples=80, deadline=None)
@given(
    extents=st.lists(st.integers(1, 4), max_size=3).map(tuple),
    num_images=st.integers(1, 40),
)
def test_roundtrip_every_image(extents, num_images):
    """this_image and image_index are inverse bijections over the
    existing images."""
    cd = Codimensions(extents=extents)
    seen = set()
    for img in range(1, num_images + 1):
        subs = cd.this_image(img, num_images)
        assert cd.image_index(subs, num_images) == img
        assert subs not in seen
        seen.add(subs)


def test_coarray_with_codimensions_end_to_end():
    """A [2,*] coarray: cosubscript co-indexing moves real data."""
    import numpy as np

    from repro import caf

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        x = caf.coarray((2,), np.int64, codim=Codimensions(extents=(2,)))
        x[:] = me * 7
        caf.sync_all()
        subs = x.this_image_subs()
        assert x.image_index(*subs) == me
        # read image at cosubscripts (1, 2) == image 3 (column-major)
        v = x.at(1, 2)[0]
        assert v == 3 * 7
        try:
            x.at(2, 9)  # beyond num_images
        except IndexError:
            pass
        else:
            raise AssertionError("bad cosubscripts accepted")
        return subs

    out = caf.launch(kernel, num_images=6)
    assert out[0] == (1, 1) and out[1] == (2, 1) and out[2] == (1, 2)


def test_coarray_without_codim_rejects_intrinsics():
    import numpy as np

    import pytest as _pytest

    from repro import caf

    def kernel():
        x = caf.coarray((2,), np.int64)
        try:
            x.image_index(1)
        except ValueError:
            return True
        return False

    assert all(caf.launch(kernel, num_images=1))
