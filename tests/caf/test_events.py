"""CAF events (event_type): post/wait/query."""

import numpy as np
import pytest

from repro import caf


def test_post_wakes_waiter():
    def kernel():
        me = caf.this_image()
        ev = caf.event_type()
        data = caf.coarray((4,), np.int64)
        caf.sync_all()
        if me == 1:
            data.on(2)[:] = [9, 9, 9, 9]
            ev.post(2)  # post carries release: data visible to waiter
            return None
        if me == 2:
            ev.wait()
            return list(data.local)
        return None

    out = caf.launch(kernel, num_images=3)
    assert out[1] == [9, 9, 9, 9]


def test_wait_consumes_count():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        ev = caf.event_type()
        caf.sync_all()
        if me != 1:
            ev.post(1)
            caf.sync_all()
            return None
        caf.sync_all()
        assert ev.query() == n - 1
        ev.wait(until_count=n - 1)
        return ev.query()

    out = caf.launch(kernel, num_images=4)
    assert out[0] == 0


def test_multiple_waits_accumulate():
    def kernel():
        me = caf.this_image()
        ev = caf.event_type()
        caf.sync_all()
        if me == 2:
            for _ in range(3):
                ev.post(1)
            return None
        for _ in range(3):
            ev.wait()
        return ev.query()

    out = caf.launch(kernel, num_images=2)
    assert out[0] == 0


def test_event_arrays():
    def kernel():
        me = caf.this_image()
        ev = caf.event_type((2,))
        caf.sync_all()
        if me == 1:
            ev.post(2, index=1)
        if me == 2:
            ev.wait(index=1)
            assert ev.query(index=0) == 0
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=2))


def test_event_validation():
    def kernel():
        ev = caf.event_type()
        ev.wait(until_count=0)

    with pytest.raises(RuntimeError, match="until_count"):
        caf.launch(kernel, num_images=1)

    def kernel2():
        ev = caf.event_type((2,))
        ev.post(1, index=5)

    with pytest.raises(RuntimeError, match="out of bounds"):
        caf.launch(kernel2, num_images=1)
