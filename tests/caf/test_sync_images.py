"""sync all / sync images semantics."""

import numpy as np

from repro import caf
from repro.runtime.context import current


def test_sync_all_orders_puts():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        x = caf.coarray((1,), np.int64)
        x[:] = 0
        caf.sync_all()
        x.on(me % n + 1)[0] = me
        caf.sync_all()
        return int(x.local[0])

    out = caf.launch(kernel, num_images=4)
    assert out == [4, 1, 2, 3]


def test_sync_images_pairwise():
    def kernel():
        me = caf.this_image()
        x = caf.coarray((1,), np.int64)
        x[:] = 0
        caf.sync_all()
        if me == 1:
            x.on(2)[0] = 42
            caf.sync_images([2])
        elif me == 2:
            caf.sync_images([1])
            assert x.local[0] == 42
        return True

    assert all(caf.launch(kernel, num_images=3))


def test_sync_images_repeated_rounds():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        x = caf.coarray((1,), np.int64)
        x[:] = 0
        caf.sync_all()
        partner = 2 if me == 1 else 1
        if me in (1, 2):
            for round_no in range(5):
                if me == 1:
                    x.on(2)[0] = round_no
                    caf.sync_images([2])
                    caf.sync_images([2])  # round completion
                else:
                    caf.sync_images([1])
                    assert x.local[0] == round_no, (round_no, x.local)
                    caf.sync_images([1])
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=3))


def test_sync_images_star():
    def kernel():
        me = caf.this_image()
        x = caf.coarray((1,), np.int64)
        x[:] = me
        caf.sync_images("*")
        return True

    assert all(caf.launch(kernel, num_images=4))


def test_sync_images_ring():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        nxt, prev = me % n + 1, (me - 2) % n + 1
        x = caf.coarray((1,), np.int64)
        x[:] = 0
        caf.sync_all()
        x.on(nxt)[0] = me
        caf.sync_images(sorted({nxt, prev}))
        return int(x.local[0])

    out = caf.launch(kernel, num_images=5)
    assert out == [5, 1, 2, 3, 4]


def test_sync_all_reconciles_clocks():
    def kernel():
        current().clock.advance(float(caf.this_image()) * 3)
        caf.sync_all()
        return current().clock.now

    out = caf.launch(kernel, num_images=4)
    assert len({round(t, 9) for t in out}) == 1
