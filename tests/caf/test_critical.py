"""The F2008 ``critical`` construct and ``sync memory``."""

import numpy as np

from repro import caf
from repro.runtime.context import current


def test_critical_provides_mutual_exclusion():
    def kernel():
        counter = caf.coarray((1,), np.int64)
        counter[:] = 0
        caf.sync_all()
        for _ in range(10):
            with caf.critical():
                v = int(counter.on(1)[0])  # unsafe without exclusion
                counter.on(1)[0] = v + 1
        caf.sync_all()
        return int(counter.local[0]) if caf.this_image() == 1 else None

    out = caf.launch(kernel, num_images=5)
    assert out[0] == 50


def test_named_criticals_are_independent():
    """Two differently-named criticals may be held concurrently."""

    def kernel():
        me = caf.this_image()
        caf.sync_all()
        if me == 1:
            with caf.critical("alpha"):
                with caf.critical("beta"):  # no self-deadlock
                    pass
        caf.sync_all()
        # both names still usable by everyone afterwards
        with caf.critical("alpha"):
            pass
        with caf.critical("beta"):
            pass
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=3))


def test_critical_uses_stable_slot_per_name():
    def kernel():
        rt = caf.current_runtime()
        caf.sync_all()
        g1 = caf.critical("x")
        g2 = caf.critical("x")
        g3 = caf.critical("y")
        # same construct name -> same implicit lock slot, every time
        assert g1.index == g2.index
        assert g1.lock is rt._critical_locks
        # the slot array was declared once at startup
        assert rt._critical_locks.size == rt.critical_slots
        return (g1.index, g3.index)

    out = caf.launch(kernel, num_images=2)
    assert out[0] == out[1]  # slots agree across images


def test_conditional_named_critical_does_not_deadlock():
    """Only one image ever executes this named critical — legal in
    Fortran, and must not hang (the regression that motivated the
    slot-array design)."""

    def kernel():
        me = caf.this_image()
        caf.sync_all()
        if me == 1:
            with caf.critical("only-image-1"):
                pass
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=4))


def test_critical_inside_team_scopes_to_team():
    def kernel():
        me = caf.this_image()
        team = caf.form_team(1 + (me - 1) % 2)
        counter = caf.coarray((1,), np.int64)
        counter[:] = 0
        caf.sync_all()
        with caf.change_team(team):
            for _ in range(5):
                with caf.critical("team-crit"):
                    v = int(counter.on(1)[0])  # team image 1
                    counter.on(1)[0] = v + 1
            caf.sync_all()
            if caf.this_image() == 1:
                assert int(counter.local[0]) == 5 * caf.num_images()
        return True

    assert all(caf.launch(kernel, num_images=6))


def test_sync_memory_completes_pending_puts():
    def kernel():
        me = caf.this_image()
        rt = caf.current_runtime()
        a = caf.coarray((1 << 12,), np.uint8)
        caf.sync_all()
        # relaxed ordering leaves puts pending; sync memory completes them
        return True

    assert all(caf.launch(kernel, num_images=2))


def test_sync_memory_with_relaxed_ordering():
    from tests.conftest import TEST_MACHINE

    def kernel():
        me = caf.this_image()
        rt = caf.current_runtime()
        a = caf.coarray((1 << 12,), np.uint8)
        caf.sync_all()
        if me == 1:
            a.on(3)[:] = np.ones(1 << 12, dtype=np.uint8)
            assert rt.layer._pending[0] > 0.0
            caf.sync_memory()
            assert rt.layer._pending[0] == 0.0
        caf.sync_all()
        return True

    assert all(
        caf.launch(kernel, num_images=4, machine=TEST_MACHINE, ordering="relaxed")
    )


def test_critical_sections_are_causally_ordered():
    """The causality model holds: virtual CS intervals never overlap.

    Each image timestamps its critical section entry/exit; after merging
    all intervals, no two may intersect — the MCS handoff's put
    timestamp plus the waiters' clock merges must enforce this."""

    def kernel():
        ctx = current()
        lck = caf.lock_type()
        caf.sync_all()
        intervals = []
        for _ in range(4):
            caf.lock(lck, 1)
            start = ctx.clock.now
            ctx.clock.advance(0.5)  # critical-section work
            end = ctx.clock.now
            caf.unlock(lck, 1)
            intervals.append((start, end))
        caf.sync_all()
        return intervals

    out = caf.launch(kernel, num_images=6, machine="titan", profile="cray-shmem")
    all_intervals = sorted(i for per_image in out for i in per_image)
    for (s0, e0), (s1, e1) in zip(all_intervals, all_intervals[1:]):
        assert e0 <= s1 + 1e-9, (s0, e0, s1, e1)
