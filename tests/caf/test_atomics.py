"""CAF atomic subroutines (Table II atomic rows)."""

import numpy as np
import pytest

from repro import caf


def test_define_and_ref():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        atom = caf.coarray((1,), np.int64)
        caf.sync_all()
        if me == 1:
            caf.atomic_define(atom, 2, value=42)
        caf.sync_all()
        return caf.atomic_ref(atom, 2)

    out = caf.launch(kernel, num_images=3)
    assert out == [42, 42, 42]


def test_fetch_add_concurrent():
    def kernel():
        atom = caf.coarray((1,), np.int64)
        caf.sync_all()
        olds = [caf.atomic_fetch_add(atom, 1, value=2) for _ in range(10)]
        caf.sync_all()
        total = caf.atomic_ref(atom, 1)
        return (total, olds)

    out = caf.launch(kernel, num_images=4)
    assert all(t == 80 for t, _ in out)
    assert all(o % 2 == 0 for _, olds in out for o in olds)


def test_cas_semantics():
    def kernel():
        me = caf.this_image()
        atom = caf.coarray((1,), np.int64)
        caf.sync_all()
        old = caf.atomic_cas(atom, 1, compare=0, new=me)
        caf.sync_all()
        final = caf.atomic_ref(atom, 1)
        return (old, final)

    out = caf.launch(kernel, num_images=4)
    winners = [o for o, _ in out if o == 0]
    assert len(winners) == 1
    finals = {f for _, f in out}
    assert len(finals) == 1 and finals.pop() in (1, 2, 3, 4)


def test_bitwise_fetch_ops():
    def kernel():
        me = caf.this_image()
        atom = caf.coarray((3,), np.int64)
        atom[:] = [0b1111, 0, 0b1111]
        caf.sync_all()
        caf.atomic_fetch_and(atom, 1, value=~(1 << (me - 1)), index=0)
        caf.atomic_fetch_or(atom, 1, value=1 << (me - 1), index=1)
        caf.atomic_fetch_xor(atom, 1, value=1 << (me - 1), index=2)
        caf.sync_all()
        if me == 1:
            return [int(v) for v in atom.local]
        return None

    out = caf.launch(kernel, num_images=2)
    assert out[0] == [0b1100, 0b0011, 0b1100]


def test_atomic_add_no_fetch():
    def kernel():
        atom = caf.coarray((1,), np.int64)
        caf.sync_all()
        caf.atomic_add(atom, 1, value=5)
        caf.sync_all()
        return caf.atomic_ref(atom, 1)

    out = caf.launch(kernel, num_images=3)
    assert out[0] == 15


def test_atomic_swap():
    def kernel():
        me = caf.this_image()
        atom = caf.coarray((1,), np.int64)
        atom[:] = 7
        caf.sync_all()
        if me == 1:
            old = caf.atomic_swap(atom, 1, value=99)
            assert old == 7
        caf.sync_all()
        return caf.atomic_ref(atom, 1)

    assert caf.launch(kernel, num_images=2)[0] == 99


def test_atomics_require_atomic_int_kind():
    def kernel():
        atom = caf.coarray((1,), np.float64)
        caf.atomic_add(atom, 1, value=1)

    with pytest.raises(RuntimeError, match="8-byte integer"):
        caf.launch(kernel, num_images=1)

    def kernel32():
        atom = caf.coarray((1,), np.int32)
        caf.atomic_ref(atom, 1)

    with pytest.raises(RuntimeError, match="8-byte integer"):
        caf.launch(kernel32, num_images=1)


def test_atomics_at_index():
    def kernel():
        atom = caf.coarray((4,), np.int64)
        caf.sync_all()
        caf.atomic_add(atom, 1, value=1, index=2)
        caf.sync_all()
        return list(atom.local) if caf.this_image() == 1 else None

    out = caf.launch(kernel, num_images=3)
    assert out[0] == [0, 0, 3, 0]
