"""The runtime's LRU transfer-plan cache: hits, bypasses, keying,
eviction, and safety across deallocate/reallocate cycles."""

import numpy as np
import pytest

from repro import caf
from repro.caf.runtime import current_runtime


def test_repeated_sections_hit_the_cache():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((8, 8), np.int64)
        a[...] = 0
        caf.sync_all()
        nxt = me % n + 1
        for i in range(5):
            a.on(nxt).put((slice(0, 8, 2), slice(1, 8, 2)), np.full((4, 4), i + me))
            caf.sync_all()
        rt = current_runtime()
        return dict(rt.plan_cache_info(), **{"my_hits": rt.my_stats["plan_cache_hits"]})

    out = caf.launch(kernel, num_images=2, profile="cray-shmem")
    info = out[0]
    assert info["entries"] == 1  # both images share one entry
    # The cache is shared: this image's first access may already hit an
    # entry the sibling inserted, so at least 4 of its 5 accesses hit.
    assert info["my_hits"] >= 4
    assert info["hits"] + info["misses"] == 10  # 5 accesses x 2 images
    assert info["misses"] >= 1


def test_algorithm_override_bypasses_cache():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((8, 8), np.int64)
        a[...] = 0
        caf.sync_all()
        nxt = me % n + 1
        for _ in range(3):
            a.on(nxt).put((slice(0, 8, 2), slice(1, 8, 2)), 7, algorithm="naive")
            caf.sync_all()
        return current_runtime().plan_cache_info()

    info = caf.launch(kernel, num_images=2)[0]
    assert info["entries"] == 0
    assert info["hits"] == 0
    assert info["misses"] == 0


def test_cache_key_includes_conduit_nativeness_and_itemsize():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((6, 6), np.int64)
        b = caf.coarray((6, 6), np.int32)  # same shape, different itemsize
        a[...] = 0
        b[...] = 0
        caf.sync_all()
        nxt = me % n + 1
        key = (slice(0, 6, 2), slice(0, 6, 2))
        a.on(nxt).put(key, 1)
        b.on(nxt).put(key, 2)
        caf.sync_all()
        rt = current_runtime()
        native = rt.layer.profile.iput_native
        return [k for k in rt._plan_cache], native

    for profile in ("cray-shmem", "mvapich2x-shmem"):
        keys, native = caf.launch(kernel, num_images=2, profile=profile)[0]
        assert len(keys) == 2  # int64 and int32 entries are distinct
        for k in keys:
            shape, canon, algo, itemsize, key_native = k
            assert key_native == native
            assert itemsize in (4, 8)
        assert {k[3] for k in keys} == {4, 8}


def test_eviction_at_capacity_lru_order():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((16,), np.int64)
        a[...] = 0
        caf.sync_all()
        if me == 1:  # single image drives the cache deterministically
            keys = [slice(0, 16, 2), slice(1, 16, 2), slice(2, 16, 2)]
            rt = current_runtime()
            for k in keys:
                a.on(2 if n > 1 else 1).put(k, 3)
            assert rt.plan_cache_info()["entries"] == 2  # capacity
            before = rt.my_stats["plan_cache_misses"]
            a.on(2 if n > 1 else 1).put(keys[0], 4)  # evicted -> miss again
            assert rt.my_stats["plan_cache_misses"] == before + 1
            a.on(2 if n > 1 else 1).put(keys[2], 5)  # still resident -> hit
            assert rt.my_stats["plan_cache_hits"] >= 1
        caf.sync_all()
        return True

    assert all(caf.launch(kernel, num_images=2, plan_cache_size=2))


def test_cache_disabled_with_zero_capacity():
    def kernel():
        me, n = caf.this_image(), caf.num_images()
        a = caf.coarray((8,), np.int64)
        a[...] = 0
        caf.sync_all()
        nxt = me % n + 1
        for _ in range(3):
            a.on(nxt).put(slice(0, 8, 2), 5)
            caf.sync_all()
        return current_runtime().plan_cache_info()

    info = caf.launch(kernel, num_images=2, plan_cache_size=0)[0]
    assert info == {"entries": 0, "capacity": 0, "hits": 0, "misses": 0}


@pytest.mark.parametrize("profile", ["cray-shmem", "mvapich2x-shmem"])
def test_dealloc_realloc_never_serves_stale_plan(profile):
    """A cached plan holds offsets relative to the array base, so a new
    allocation of the same shape — living at a different heap offset —
    must still receive its bytes at the right place."""

    def kernel():
        me, n = caf.this_image(), caf.num_images()
        pad = caf.coarray((3,), np.int64)  # shifts the next allocation
        a = caf.coarray((6, 8), np.int64)
        a[...] = -1
        caf.sync_all()
        nxt = me % n + 1
        key = (slice(0, 6, 2), slice(0, 8, 4))
        a.on(nxt).put(key, np.arange(6).reshape(3, 2) + me)
        caf.sync_all()
        first = a.local.copy()
        first_off = a.handle.byte_offset
        a.deallocate()
        pad.deallocate()
        b = caf.coarray((6, 8), np.int64)  # same shape -> cache hit
        b[...] = -1
        caf.sync_all()
        second_off = b.handle.byte_offset
        b.on(nxt).put(key, np.arange(6).reshape(3, 2) + me)
        caf.sync_all()
        rt = current_runtime()
        return first, b.local.copy(), first_off, second_off, rt.my_stats["plan_cache_hits"]

    out = caf.launch(kernel, num_images=2, profile=profile)
    for i, (first, second, off_a, off_b, hits) in enumerate(out):
        prev = (i + 1) % 2
        expect = np.full((6, 8), -1, dtype=np.int64)
        expect[0:6:2, 0:8:4] = np.arange(6).reshape(3, 2) + prev + 1
        assert np.array_equal(first, expect)
        assert np.array_equal(second, expect)
        assert off_a != off_b  # the reallocation really moved
        assert hits >= 1  # and the second put really came from the cache
