"""Machine descriptions and PE placement."""

import pytest

from repro.sim.machines import STAMPEDE
from repro.sim.topology import Machine, Topology


def test_blocked_placement():
    topo = Topology(STAMPEDE, 40)
    assert topo.num_nodes == 3
    assert topo.node_of(0) == 0
    assert topo.node_of(15) == 0
    assert topo.node_of(16) == 1
    assert topo.node_of(39) == 2


def test_same_node():
    topo = Topology(STAMPEDE, 32)
    assert topo.same_node(0, 15)
    assert not topo.same_node(15, 16)


def test_pes_on_node():
    topo = Topology(STAMPEDE, 20)
    assert topo.pes_on_node(0) == list(range(16))
    assert topo.pes_on_node(1) == [16, 17, 18, 19]
    with pytest.raises(ValueError):
        topo.pes_on_node(2)


def test_node_of_bounds():
    topo = Topology(STAMPEDE, 4)
    with pytest.raises(ValueError):
        topo.node_of(4)
    with pytest.raises(ValueError):
        topo.node_of(-1)


def test_too_many_pes_rejected(test_machine):
    with pytest.raises(ValueError):
        Topology(test_machine, test_machine.nodes * test_machine.cores_per_node + 1)


def test_zero_pes_rejected():
    with pytest.raises(ValueError):
        Topology(STAMPEDE, 0)


def test_machine_validation():
    with pytest.raises(ValueError):
        Machine(
            name="bad",
            nodes=0,
            processor="p",
            cores_per_node=16,
            interconnect="i",
            link_latency_us=1,
            link_bandwidth_Bpus=1,
            intra_latency_us=1,
            intra_bandwidth_Bpus=1,
            amo_process_us=1,
            cpu_am_process_us=1,
            am_attentiveness_us=1,
        )
    with pytest.raises(ValueError):
        Machine(
            name="bad",
            nodes=1,
            processor="p",
            cores_per_node=16,
            interconnect="i",
            link_latency_us=-1,
            link_bandwidth_Bpus=1,
            intra_latency_us=1,
            intra_bandwidth_Bpus=1,
            amo_process_us=1,
            cpu_am_process_us=1,
            am_attentiveness_us=1,
        )


def test_total_cores():
    assert STAMPEDE.total_cores == 6400 * 16
