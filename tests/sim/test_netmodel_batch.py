"""Bit-identity of the batched network pricing vs. sequential loops.

Every ``*_batch`` method must return exactly the final times that N
scalar calls produce under the layer's clock-merge recurrence
(``now_{k+1} = max(now_k, local_k)``), and must leave every resource
timeline in exactly the state the scalar loop leaves it in — down to
the last ULP, since float addition is not associative and the virtual
timestamps downstream are compared bitwise.
"""

import numpy as np
import pytest

from repro.sim.machines import MACHINES
from repro.sim.netmodel import NetworkModel, get_conduit
from repro.sim.resources import Timeline, _chain_starts
from repro.sim.topology import Topology

NOW = 3.7254101001  # deliberately un-round starting clock


def fresh_model(machine="stampede", num_pes=48):
    return NetworkModel(Topology(MACHINES[machine], num_pes))


def preload(model, backlog):
    """Create queueing pressure on node 0/1/2 NICs before the batch."""
    if not backlog:
        return
    tls = model.timelines()
    for node in (0, 1, 2):
        tls["tx"][node].reserve(0.0, 41.03)
        tls["rx"][node].reserve(0.0, 67.9)


def timeline_state(model):
    out = {}
    for name, tls in model.timelines().items():
        out[name] = [(t.next_free, t.busy_time, t.reservations) for t in tls]
    return out


def seq_put(model, src, dst, nbytes, count, conduit, now):
    timing = None
    for _ in range(count):
        timing = model.put(src, dst, nbytes, conduit, now)
        now = max(now, timing.local_complete)
    return timing


def seq_get(model, src, dst, nbytes, count, conduit, now):
    done = None
    for _ in range(count):
        done = model.get(src, dst, nbytes, conduit, now)
        now = max(now, done)
    return done


def seq_iput(model, src, dst, nelems, elem_size, count, conduit, now, stride_bytes):
    timing = None
    for _ in range(count):
        timing = model.iput(src, dst, nelems, elem_size, conduit, now, stride_bytes)
        now = max(now, timing.local_complete)
    return timing


def seq_iget(model, src, dst, nelems, elem_size, count, conduit, now, stride_bytes):
    done = None
    for _ in range(count):
        done = model.iget(src, dst, nelems, elem_size, conduit, now, stride_bytes)
        now = max(now, done)
    return done


# PEs 0 and 1 share node 0; PE 20 lives on node 1 (16 cores/node).
PAIRS = {"intra": (0, 1), "inter": (0, 20)}
COUNTS = [1, 2, 7, 50]
CONDUITS = ["cray-shmem", "mvapich2x-shmem", "gasnet", "mpi3"]


@pytest.mark.parametrize("conduit_name", CONDUITS)
@pytest.mark.parametrize("pair", ["intra", "inter"])
@pytest.mark.parametrize("nbytes", [8, 512, 8192, 65536])  # eager + rendezvous
@pytest.mark.parametrize("backlog", [False, True])
def test_put_batch_bit_identical(conduit_name, pair, nbytes, backlog):
    conduit = get_conduit(conduit_name)
    src, dst = PAIRS[pair]
    for count in COUNTS:
        a, b = fresh_model(), fresh_model()
        preload(a, backlog)
        preload(b, backlog)
        want = seq_put(a, src, dst, nbytes, count, conduit, NOW)
        got = b.put_batch(src, dst, nbytes, count, conduit, NOW)
        assert got.local_complete == want.local_complete, (conduit_name, pair, nbytes, count)
        assert got.remote_complete == want.remote_complete
        assert timeline_state(a) == timeline_state(b)


@pytest.mark.parametrize("conduit_name", CONDUITS)
@pytest.mark.parametrize("pair", ["intra", "inter"])
@pytest.mark.parametrize("nbytes", [8, 4096, 100000])
@pytest.mark.parametrize("backlog", [False, True])
def test_get_batch_bit_identical(conduit_name, pair, nbytes, backlog):
    conduit = get_conduit(conduit_name)
    src, dst = PAIRS[pair]
    for count in COUNTS:
        a, b = fresh_model(), fresh_model()
        preload(a, backlog)
        preload(b, backlog)
        want = seq_get(a, src, dst, nbytes, count, conduit, NOW)
        got = b.get_batch(src, dst, nbytes, count, conduit, NOW)
        assert got == want, (conduit_name, pair, nbytes, count)
        assert timeline_state(a) == timeline_state(b)


@pytest.mark.parametrize("conduit_name", ["cray-shmem", "dmapp-caf"])
@pytest.mark.parametrize("pair", ["intra", "inter"])
@pytest.mark.parametrize("stride_bytes", [8, 160, 4096])
@pytest.mark.parametrize("backlog", [False, True])
def test_iput_batch_bit_identical(conduit_name, pair, stride_bytes, backlog):
    conduit = get_conduit(conduit_name)
    src, dst = PAIRS[pair]
    for count in COUNTS:
        a, b = fresh_model(), fresh_model()
        preload(a, backlog)
        preload(b, backlog)
        want = seq_iput(a, src, dst, 25, 8, count, conduit, NOW, stride_bytes)
        got = b.iput_batch(src, dst, 25, 8, count, conduit, NOW, stride_bytes)
        assert got.local_complete == want.local_complete
        assert got.remote_complete == want.remote_complete
        assert timeline_state(a) == timeline_state(b)


@pytest.mark.parametrize("conduit_name", ["cray-shmem", "dmapp-caf"])
@pytest.mark.parametrize("pair", ["intra", "inter"])
@pytest.mark.parametrize("backlog", [False, True])
def test_iget_batch_bit_identical(conduit_name, pair, backlog):
    conduit = get_conduit(conduit_name)
    src, dst = PAIRS[pair]
    for count in COUNTS:
        a, b = fresh_model(), fresh_model()
        preload(a, backlog)
        preload(b, backlog)
        want = seq_iget(a, src, dst, 25, 8, count, conduit, NOW, 200)
        got = b.iget_batch(src, dst, 25, 8, count, conduit, NOW, 200)
        assert got == want
        assert timeline_state(a) == timeline_state(b)


def test_batch_rejects_nonpositive_count():
    model = fresh_model()
    conduit = get_conduit("cray-shmem")
    with pytest.raises(ValueError):
        model.put_batch(0, 20, 8, 0, conduit, 0.0)
    with pytest.raises(ValueError):
        model.get_batch(0, 20, 8, -1, conduit, 0.0)


def test_iput_batch_requires_native():
    model = fresh_model()
    with pytest.raises(ValueError, match="native"):
        model.iput_batch(0, 20, 4, 8, 3, get_conduit("mvapich2x-shmem"), 0.0)
    with pytest.raises(ValueError, match="native"):
        model.iget_batch(0, 20, 4, 8, 3, get_conduit("gasnet"), 0.0)


# ---------------------------------------------------------------------------
# Timeline batch primitives
# ---------------------------------------------------------------------------


def seq_reserve(tl, earliest, duration):
    return np.array([tl.reserve(e, duration)[0] for e in earliest])


@pytest.mark.parametrize(
    "earliest",
    [
        np.full(40, 5.0),  # pure queueing
        np.linspace(0.3, 400.0, 40),  # earliest-bound tail
        np.array([10.0, 10.1, 50.0, 50.05, 120.0, 120.2, 121.0]),  # mixed
    ],
)
@pytest.mark.parametrize("duration", [0.0, 0.7531, 13.0])
@pytest.mark.parametrize("backlog", [0.0, 37.7])
def test_reserve_batch_matches_scalar(earliest, duration, backlog):
    a, b = Timeline("a"), Timeline("b")
    if backlog:
        a.reserve(0.0, backlog)
        b.reserve(0.0, backlog)
    want = seq_reserve(a, earliest, duration)
    got = b.reserve_batch(np.asarray(earliest, dtype=np.float64), duration)
    assert np.array_equal(want, got)
    assert a.next_free == b.next_free
    assert a.busy_time == b.busy_time
    assert a.reservations == b.reservations


def test_reserve_batch_scalar_fallback_path():
    # Every element starts a new segment (earliest always beats the
    # drained queue), forcing > 32 passes and the scalar fallback.
    earliest = np.arange(64, dtype=np.float64) * 10.0
    a, b = Timeline("a"), Timeline("b")
    want = seq_reserve(a, earliest, 1.0)
    got = b.reserve_batch(earliest, 1.0)
    assert np.array_equal(want, got)
    assert a.next_free == b.next_free
    assert a.busy_time == b.busy_time


def test_chain_starts_random_fuzz():
    rng = np.random.default_rng(42)
    for _ in range(50):
        n = int(rng.integers(1, 80))
        earliest = rng.uniform(0.0, 200.0, n)  # non-monotone on purpose
        duration = float(abs(rng.normal(1.0, 3.0)))
        free = float(abs(rng.normal(20, 30)))
        got = _chain_starts(earliest, duration, free)
        # scalar oracle
        out = np.empty(n)
        f = free
        for i, e in enumerate(earliest):
            s = max(e, f)
            out[i] = s
            f = s + duration
        assert np.array_equal(got, out)


def test_reserve_batch_empty():
    tl = Timeline("t")
    got = tl.reserve_batch(np.empty(0), 1.0)
    assert got.size == 0
    assert tl.reservations == 0
