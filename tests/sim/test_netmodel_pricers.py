"""Bit-identity of memoized pricing closures vs the plain methods.

The vectorized data plane prices through closures returned by
``put_pricer``/``get_pricer``/``iput_pricer``/``iget_pricer``/
``amo_pricer``/``batch_pricer``.  A pricer must return exactly what the
corresponding method returns — same floats to the last ULP — and must
leave every resource timeline in exactly the same state, because the
virtual timestamps downstream are compared bitwise against the
``REPRO_NO_VECTOR=1`` oracle.
"""

import pytest

from repro.sim.machines import MACHINES
from repro.sim.netmodel import NetworkModel, get_conduit
from repro.sim.topology import Topology

NOW = 7.91287310001  # deliberately un-round starting clock


def fresh_model(num_pes=48):
    return NetworkModel(Topology(MACHINES["stampede"], num_pes))


def timeline_state(model):
    return {
        name: [(t.next_free, t.busy_time, t.reservations) for t in tls]
        for name, tls in model.timelines().items()
    }


def preload(model):
    """Backlog pressure so reservations queue rather than start free."""
    tls = model.timelines()
    for node in (0, 1, 2):
        tls["tx"][node].reserve(0.0, 13.37)
        tls["rx"][node].reserve(0.0, 29.1)
        tls["amo"][node].reserve(0.0, 3.21)
        tls["cpu"][node].reserve(0.0, 5.5)


PAIRS = [(0, 1), (0, 17), (20, 40)]  # same-node and two inter-node pairs
CONDUITS = ["cray-shmem", "gasnet", "mpi3"]


@pytest.mark.parametrize("src,dst", PAIRS)
@pytest.mark.parametrize("conduit_name", CONDUITS)
@pytest.mark.parametrize("nbytes", [1, 8, 4096, 100_000])
def test_put_get_pricers_bitwise(src, dst, conduit_name, nbytes):
    conduit = get_conduit(conduit_name)
    direct, priced = fresh_model(), fresh_model()
    preload(direct), preload(priced)
    now = NOW
    for _ in range(3):  # repeat: queueing state must track exactly
        t_direct = direct.put(src, dst, nbytes, conduit, now)
        t_priced = priced.put_pricer(src, dst, nbytes, conduit)(now)
        assert t_direct == t_priced
        g_direct = direct.get(src, dst, nbytes, conduit, now)
        g_priced = priced.get_pricer(src, dst, nbytes, conduit)(now)
        assert g_direct == g_priced
        now = max(now, t_direct.local_complete, g_direct)
    assert timeline_state(direct) == timeline_state(priced)


@pytest.mark.parametrize("src,dst", PAIRS)
@pytest.mark.parametrize("stride_bytes", [8, 256, None])
def test_strided_pricers_bitwise(src, dst, stride_bytes):
    conduit = get_conduit("cray-shmem")  # iput-native
    direct, priced = fresh_model(), fresh_model()
    preload(direct), preload(priced)
    now = NOW
    for nelems in (1, 7, 400):
        t_direct = direct.iput(src, dst, nelems, 8, conduit, now, stride_bytes=stride_bytes)
        t_priced = priced.iput_pricer(src, dst, nelems, 8, conduit, stride_bytes)(now)
        assert t_direct == t_priced
        g_direct = direct.iget(src, dst, nelems, 8, conduit, now, stride_bytes=stride_bytes)
        g_priced = priced.iget_pricer(src, dst, nelems, 8, conduit, stride_bytes)(now)
        assert g_direct == g_priced
        now = max(now, t_direct.local_complete, g_direct)
    assert timeline_state(direct) == timeline_state(priced)


@pytest.mark.parametrize("src,dst", PAIRS)
@pytest.mark.parametrize("conduit_name", CONDUITS)
def test_amo_pricer_bitwise(src, dst, conduit_name):
    conduit = get_conduit(conduit_name)
    direct, priced = fresh_model(), fresh_model()
    preload(direct), preload(priced)
    price, proc, back = priced.amo_pricer(src, dst, conduit)
    now = NOW
    for _ in range(4):
        d = direct.amo(src, dst, conduit, now)
        p = price(now)
        assert d == p
        now = max(now, d) + 0.503
    assert timeline_state(direct) == timeline_state(priced)
    # proc/back must equal the constants the causality branch re-derives
    m = direct._machine
    if direct.topology.same_node(src, dst):
        assert (proc, back) == (m.amo_process_us, m.intra_latency_us)
    elif conduit.amo_offload:
        assert (proc, back) == (m.amo_process_us, m.link_latency_us)
    else:
        assert (proc, back) == (
            m.am_attentiveness_us + m.cpu_am_process_us,
            m.link_latency_us,
        )


def seq_batch(model, op, src, dst, count, conduit, now, **kw):
    if op == "put":
        return model.put_batch(src, dst, kw["nbytes"], count, conduit, now)
    if op == "get":
        return model.get_batch(src, dst, kw["nbytes"], count, conduit, now)
    if op == "iput":
        return model.iput_batch(
            src, dst, kw["nelems"], kw["elem_size"], count, conduit, now,
            stride_bytes=kw.get("stride_bytes"),
        )
    return model.iget_batch(
        src, dst, kw["nelems"], kw["elem_size"], count, conduit, now,
        stride_bytes=kw.get("stride_bytes"),
    )


@pytest.mark.parametrize("src,dst", PAIRS)
@pytest.mark.parametrize("count", [1, 2, 50])
@pytest.mark.parametrize(
    "op,kw",
    [
        ("put", {"nbytes": 8}),
        ("put", {"nbytes": 100_000}),  # rendezvous branch
        ("get", {"nbytes": 64}),
        ("iput", {"nelems": 25, "elem_size": 8, "stride_bytes": 160}),
        ("iget", {"nelems": 25, "elem_size": 8, "stride_bytes": 160}),
    ],
)
def test_batch_pricer_bitwise(src, dst, count, op, kw):
    conduit = get_conduit("cray-shmem")
    direct, priced = fresh_model(), fresh_model()
    preload(direct), preload(priced)
    d = seq_batch(direct, op, src, dst, count, conduit, NOW, **kw)
    p = priced.batch_pricer(op, src, dst, count=count, conduit=conduit, **kw)(NOW)
    assert d == p
    assert timeline_state(direct) == timeline_state(priced)


def test_pricer_cache_reuses_closures():
    model = fresh_model()
    conduit = get_conduit("cray-shmem")
    assert model.put_pricer(0, 17, 64, conduit) is model.put_pricer(0, 17, 64, conduit)
    # same node pair through different PEs -> same closure
    assert model.put_pricer(1, 18, 64, conduit) is model.put_pricer(0, 17, 64, conduit)
    assert model.amo_pricer(0, 17, conduit) is model.amo_pricer(0, 17, conduit)
