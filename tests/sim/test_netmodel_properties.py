"""Property-based invariants of the cost engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machines import MACHINES
from repro.sim.netmodel import CONDUITS, NetworkModel
from repro.sim.topology import Topology

conduits = st.sampled_from(sorted(CONDUITS))
machines = st.sampled_from(sorted(MACHINES))
sizes = st.integers(0, 1 << 22)


def fresh_model(machine: str, pes: int = 34) -> NetworkModel:
    return NetworkModel(Topology(MACHINES[machine], pes))


@settings(max_examples=60, deadline=None)
@given(machine=machines, conduit=conduits, nbytes=sizes, now=st.floats(0, 1e6))
def test_put_completions_are_causal(machine, conduit, nbytes, now):
    """local <= remote, and both after the issue time."""
    m = fresh_model(machine)
    t = m.put(0, 16, nbytes, CONDUITS[conduit], now=now)
    assert now < t.local_complete <= t.remote_complete


@settings(max_examples=60, deadline=None)
@given(machine=machines, conduit=conduits, now=st.floats(0, 1e3))
def test_put_monotone_in_size(machine, conduit, now):
    m = fresh_model(machine)
    prev = 0.0
    for nbytes in (0, 1, 64, 4096, 65536, 1 << 20):
        t = fresh_model(machine).put(0, 16, nbytes, CONDUITS[conduit], now=now)
        assert t.remote_complete >= prev - 1e-9
        prev = t.remote_complete


@settings(max_examples=40, deadline=None)
@given(machine=machines, conduit=conduits, nbytes=st.integers(1, 1 << 20))
def test_intra_node_never_slower_than_inter(machine, conduit, nbytes):
    c = CONDUITS[conduit]
    intra = fresh_model(machine).put(0, 1, nbytes, c, now=0.0).remote_complete
    inter = fresh_model(machine).put(0, 16, nbytes, c, now=0.0).remote_complete
    assert intra <= inter + 1e-9


@settings(max_examples=40, deadline=None)
@given(machine=machines, conduit=conduits, n_ops=st.integers(1, 20))
def test_amo_unit_serializes_exactly(machine, conduit, n_ops):
    """Back-to-back atomics at one target complete in strictly
    increasing times (the amo/cpu unit is strictly serialized)."""
    m = fresh_model(machine)
    c = CONDUITS[conduit]
    times = [m.amo(0, 16, c, now=0.0) for _ in range(n_ops)]
    assert all(b > a for a, b in zip(times, times[1:]))


@settings(max_examples=40, deadline=None)
@given(machine=machines, conduit=conduits, nbytes=st.integers(0, 1 << 18))
def test_get_costs_at_least_round_trip(machine, conduit, nbytes):
    m = fresh_model(machine)
    c = CONDUITS[conduit]
    done = m.get(0, 16, nbytes, c, now=0.0)
    lat = MACHINES[machine].link_latency_us
    assert done >= 2 * lat  # request leg + data leg


@settings(max_examples=30, deadline=None)
@given(machine=machines, conduit=conduits, npes=st.integers(1, 1024))
def test_barrier_cost_positive_and_monotone(machine, conduit, npes):
    m = fresh_model(machine, pes=32)
    c = CONDUITS[conduit]
    cost = m.barrier_cost(npes, c)
    assert cost > 0
    assert m.barrier_cost(npes * 2, c) >= cost


@settings(max_examples=30, deadline=None)
@given(
    machine=machines,
    nelems=st.integers(1, 4096),
    elem=st.sampled_from([1, 2, 4, 8]),
    stride_mult=st.integers(1, 64),
)
def test_iput_monotone_in_stride(machine, nelems, elem, stride_mult):
    """Wider strides never make a native strided transfer cheaper."""
    from repro.sim.netmodel import CRAY_SHMEM

    narrow = fresh_model(machine).iput(
        0, 16, nelems, elem, CRAY_SHMEM, now=0.0, stride_bytes=elem
    )
    wide = fresh_model(machine).iput(
        0, 16, nelems, elem, CRAY_SHMEM, now=0.0, stride_bytes=elem * stride_mult * 16
    )
    assert wide.remote_complete >= narrow.remote_complete - 1e-9


@settings(max_examples=30, deadline=None)
@given(machine=machines, conduit=conduits, k=st.integers(1, 16))
def test_tx_timeline_conserves_busy_time(machine, conduit, k):
    """The injection engine's busy time equals the sum of reserved wire
    durations — no work is lost or double-counted."""
    m = fresh_model(machine)
    c = CONDUITS[conduit]
    nbytes = 8192
    for _ in range(k):
        m.put(0, 16, nbytes, c, now=0.0)
    wire = nbytes / (MACHINES[machine].link_bandwidth_Bpus * c.bw_efficiency)
    tx = m.timelines()["tx"][0]
    assert tx.busy_time == pytest.approx(k * wire)
    assert tx.reservations == k
