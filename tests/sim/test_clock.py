"""Virtual clock semantics."""

import pytest

from repro.sim.clock import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_advance_accumulates():
    c = VirtualClock()
    c.advance(1.5)
    c.advance(2.5)
    assert c.now == pytest.approx(4.0)


def test_advance_rejects_negative():
    c = VirtualClock()
    with pytest.raises(ValueError):
        c.advance(-0.1)


def test_merge_takes_max():
    c = VirtualClock(5.0)
    c.merge(3.0)
    assert c.now == 5.0
    c.merge(7.0)
    assert c.now == 7.0


def test_merge_is_idempotent():
    c = VirtualClock(2.0)
    c.merge(4.0)
    c.merge(4.0)
    assert c.now == 4.0


def test_reset():
    c = VirtualClock(9.0)
    c.reset()
    assert c.now == 0.0
    c.reset(3.0)
    assert c.now == 3.0
