"""The stride-dependent gather gap (locality model behind Section IV-C)."""

import pytest

from repro.sim.machines import CRAY_XC30
from repro.sim.netmodel import CRAY_SHMEM, NetworkModel
from repro.sim.topology import Topology


def test_gap_flat_within_cache_line():
    g8 = NetworkModel._gather_gap(CRAY_SHMEM, 8, 8)
    g64 = NetworkModel._gather_gap(CRAY_SHMEM, 8, 64)
    assert g8 == g64 == CRAY_SHMEM.iput_elem_gap_us


def test_gap_grows_past_cache_line():
    g64 = NetworkModel._gather_gap(CRAY_SHMEM, 8, 64)
    g512 = NetworkModel._gather_gap(CRAY_SHMEM, 8, 512)
    g8k = NetworkModel._gather_gap(CRAY_SHMEM, 8, 8192)
    assert g64 < g512 < g8k


def test_gap_capped():
    huge = NetworkModel._gather_gap(CRAY_SHMEM, 8, 1 << 40)
    assert huge == pytest.approx(5.0 * CRAY_SHMEM.iput_elem_gap_us)


def test_default_stride_is_elem_size():
    assert NetworkModel._gather_gap(CRAY_SHMEM, 8, None) == NetworkModel._gather_gap(
        CRAY_SHMEM, 8, 8
    )


def test_iput_cost_grows_with_stride():
    def cost(stride_bytes):
        model = NetworkModel(Topology(CRAY_XC30, 32))
        t = model.iput(0, 16, 256, 8, CRAY_SHMEM, now=0.0, stride_bytes=stride_bytes)
        return t.remote_complete

    assert cost(8) < cost(1024) < cost(65536)
