"""The paper's Table III machines."""

import pytest

from repro.sim.machines import CRAY_XC30, MACHINES, STAMPEDE, TITAN, get_machine


def test_table3_rows():
    """Node counts, processors, cores/node, interconnects match Table III."""
    assert STAMPEDE.nodes == 6400
    assert STAMPEDE.cores_per_node == 16
    assert "Sandy Bridge" in STAMPEDE.processor
    assert "InfiniBand" in STAMPEDE.interconnect

    assert CRAY_XC30.nodes == 64
    assert CRAY_XC30.cores_per_node == 16
    assert "Aries" in CRAY_XC30.interconnect

    assert TITAN.nodes == 18688
    assert TITAN.cores_per_node == 16
    assert "Opteron" in TITAN.processor
    assert "Gemini" in TITAN.interconnect


def test_lookup_aliases():
    assert get_machine("stampede") is STAMPEDE
    assert get_machine("Cray XC30") is CRAY_XC30
    assert get_machine("CRAY_XC30") is CRAY_XC30
    assert get_machine("titan") is TITAN


def test_unknown_machine():
    with pytest.raises(KeyError):
        get_machine("summit")


def test_registry_complete():
    assert set(MACHINES) == {"stampede", "cray-xc30", "titan"}


def test_interconnect_character():
    """Aries is the fastest fabric; Gemini the slowest of the three."""
    assert CRAY_XC30.link_latency_us < STAMPEDE.link_latency_us < TITAN.link_latency_us
    assert CRAY_XC30.link_bandwidth_Bpus > STAMPEDE.link_bandwidth_Bpus
