"""Unit tests for the deterministic fault engine and the watchdog."""

from __future__ import annotations

import pytest

from repro.runtime.launcher import Job
from repro.sim.faults import (
    ALWAYS_FAIL,
    FaultInjector,
    FaultPlan,
    HangError,
    TransientCommError,
    Watchdog,
)
from repro.util.allocator import OutOfMemoryError


def test_plan_validates():
    with pytest.raises(ValueError, match="transient_rate"):
        FaultPlan(seed=1, transient_rate=1.5)
    with pytest.raises(ValueError, match="max_failures"):
        FaultPlan(seed=1, max_failures=0)
    with pytest.raises(ValueError, match="latency_us"):
        FaultPlan(seed=1, latency_us=-1.0)


def test_decisions_replay_exactly():
    plan = FaultPlan(seed=42, transient_rate=0.3, latency_rate=0.4, latency_us=50.0)
    a = FaultInjector(plan, 4)
    b = FaultInjector(plan, 4)
    seq_a = [a.decide(pe, "put", 1) for pe in (0, 1, 2, 3) for _ in range(200)]
    seq_b = [b.decide(pe, "put", 1) for pe in (0, 1, 2, 3) for _ in range(200)]
    assert seq_a == seq_b
    assert any(d is not None for d in seq_a)


def test_decisions_differ_across_seeds_and_pes():
    def mk(seed):
        return FaultInjector(
            FaultPlan(seed=seed, transient_rate=0.3, latency_rate=0.3), 2
        )
    s1 = [mk(1).decide(0, "put", 1) for _ in range(1)]
    a, b = mk(1), mk(2)
    seq1 = [a.decide(0, "put", 1) for _ in range(100)]
    seq2 = [b.decide(0, "put", 1) for _ in range(100)]
    assert seq1 != seq2
    c = mk(1)
    seq_pe0 = [c.decide(0, "put", 1) for _ in range(100)]
    d = mk(1)
    seq_pe1 = [d.decide(1, "put", 1) for _ in range(100)]
    assert seq_pe0 != seq_pe1
    assert s1  # decisions are pure functions of (seed, pe, index)


def test_rates_roughly_respected():
    inj = FaultInjector(FaultPlan(seed=9, transient_rate=0.25), 1)
    hits = sum(
        1 for _ in range(2000) if (d := inj.decide(0, "put", 0)) and d.failures
    )
    assert 0.15 < hits / 2000 < 0.35


def test_transient_ops_filtering():
    # Barriers draw latency but never transient delivery failures.
    inj = FaultInjector(FaultPlan(seed=3, transient_rate=1.0), 2)
    d = inj.decide(0, "barrier", -1)
    assert d is None or d.failures == 0
    d2 = inj.decide(0, "put", 1)
    assert d2 is not None and d2.failures >= 1


def test_crash_at_exact_op_index():
    inj = FaultInjector(FaultPlan(seed=5, crash_at={1: 3}), 2)
    for i in range(6):
        d0 = inj.decide(0, "put", 1)
        assert d0 is None or not d0.crash
    for i in range(6):
        d = inj.decide(1, "put", 0)
        assert (d is not None and d.crash) == (i == 3)
    assert inj.summary()["crashes"] == 1


def test_escalation_marks_always_fail():
    inj = FaultInjector(FaultPlan(seed=7, escalate_rate=1.0), 1)
    d = inj.decide(0, "atomic", 0)
    assert d is not None and d.failures == ALWAYS_FAIL


def test_alloc_check_fires_on_kth_allocation():
    inj = FaultInjector(FaultPlan(seed=1, alloc_fail_at={0: 2}), 2)
    inj.alloc_check(0)
    inj.alloc_check(0)
    with pytest.raises(OutOfMemoryError, match="injected"):
        inj.alloc_check(0)
    inj.alloc_check(1)  # other PEs unaffected
    assert inj.summary()["alloc_faults"] == 1


def test_transient_comm_error_fields():
    err = TransientCommError("put", 2, 3, 4)
    assert (err.op, err.pe, err.target, err.attempts) == ("put", 2, 3, 4)
    assert "PE 2" in str(err) and "PE 3" in str(err)


def test_injector_pe_count_must_match_job():
    inj = FaultInjector(FaultPlan(seed=1), 2)
    with pytest.raises(ValueError, match="built for 2"):
        Job(4, faults=inj)


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------


def test_watchdog_defaults_and_validation():
    job = Job(2)
    assert isinstance(job.watchdog, Watchdog)
    assert job.watchdog.deadline_s > 0
    with pytest.raises(ValueError, match="positive"):
        Job(2, watchdog_s=0.0)


def test_watchdog_guard_trips_past_deadline():
    job = Job(3)
    wd = Watchdog(job, deadline_s=0.01)
    with wd.watch(1, "barrier(sync_id=7)") as g1, wd.watch(2, "wait_until(x ge 1)"):
        import time

        time.sleep(0.05)
        with pytest.raises(HangError) as exc_info:
            g1.poll()
    report = exc_info.value.report
    assert job.aborted()
    assert report.blocked_pes() == (1, 2)
    rendered = report.render()
    assert "barrier(sync_id=7)" in rendered
    assert "wait_until(x ge 1)" in rendered
    assert "PE 0" in rendered  # unblocked PEs are named too


def test_watchdog_fires_once():
    job = Job(2)
    wd = Watchdog(job, deadline_s=0.01)
    with wd.watch(0, "spin") as g:
        import time

        time.sleep(0.03)
        with pytest.raises(HangError):
            g.poll()
        # A racing PE hitting the deadline after the report is out just
        # returns; its wait loop exits via the abort flag instead.
        g.poll()
