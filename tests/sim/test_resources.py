"""Timeline (serialized resource) semantics."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resources import Timeline


def test_first_reservation_starts_at_earliest():
    t = Timeline()
    start, end = t.reserve(5.0, 2.0)
    assert (start, end) == (5.0, 7.0)


def test_back_to_back_serializes():
    t = Timeline()
    t.reserve(0.0, 3.0)
    start, end = t.reserve(1.0, 2.0)  # wants 1.0 but resource busy to 3.0
    assert start == 3.0 and end == 5.0


def test_gap_preserved_when_idle():
    t = Timeline()
    t.reserve(0.0, 1.0)
    start, _ = t.reserve(10.0, 1.0)
    assert start == 10.0


def test_zero_duration_ok():
    t = Timeline()
    start, end = t.reserve(2.0, 0.0)
    assert start == end == 2.0


def test_rejects_negative():
    t = Timeline()
    with pytest.raises(ValueError):
        t.reserve(-1.0, 1.0)
    with pytest.raises(ValueError):
        t.reserve(0.0, -1.0)


def test_accounting():
    t = Timeline("x")
    t.reserve(0.0, 2.0)
    t.reserve(0.0, 3.0)
    assert t.busy_time == 5.0
    assert t.reservations == 2
    t.reset()
    assert t.busy_time == 0.0
    assert t.next_free == 0.0


@settings(max_examples=50, deadline=None)
@given(
    reqs=st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 10)), min_size=1, max_size=40
    )
)
def test_reservations_never_overlap(reqs):
    t = Timeline()
    intervals = [t.reserve(e, d) for e, d in reqs]
    intervals.sort()
    for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
        assert e0 <= s1 + 1e-9


def test_thread_safety_total_busy():
    t = Timeline()
    n_threads, per_thread = 8, 200

    def worker():
        for _ in range(per_thread):
            t.reserve(0.0, 1.0)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert t.busy_time == pytest.approx(n_threads * per_thread)
    assert t.next_free == pytest.approx(n_threads * per_thread)
