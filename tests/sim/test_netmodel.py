"""Cost-engine properties: the shapes the paper's Figs 2-3 rely on."""

import pytest

from repro.sim.machines import STAMPEDE, TITAN
from repro.sim.netmodel import (
    CONDUITS,
    CRAY_SHMEM,
    GASNET,
    MPI3,
    MVAPICH2X_SHMEM,
    ConduitProfile,
    NetworkModel,
    get_conduit,
)
from repro.sim.topology import Topology


def model(machine=STAMPEDE, pes=34) -> NetworkModel:
    return NetworkModel(Topology(machine, pes))


INTER = (0, 16)  # PEs on different nodes
INTRA = (0, 1)  # PEs on the same node


def test_put_local_before_remote():
    m = model()
    t = m.put(*INTER, 64, MVAPICH2X_SHMEM, now=0.0)
    assert 0 < t.local_complete < t.remote_complete


def test_put_eager_vs_rendezvous_local_completion():
    m = model()
    small = m.put(*INTER, 64, MVAPICH2X_SHMEM, now=0.0)
    large = m.put(*INTER, 1 << 20, MVAPICH2X_SHMEM, now=0.0)
    # Eager messages complete locally at software-overhead time.
    assert small.local_complete == pytest.approx(MVAPICH2X_SHMEM.o_put_us)
    # Rendezvous messages hold the source until injection completes.
    assert large.local_complete > 100.0


def test_put_cost_monotone_in_size():
    m = model()
    prev = 0.0
    for size in (8, 64, 512, 4096, 65536, 1 << 20):
        t = m.put(*INTER, size, MVAPICH2X_SHMEM, now=0.0)
        assert t.remote_complete >= prev
        prev = t.remote_complete


def test_intra_node_cheaper_than_inter():
    m = model()
    intra = m.put(*INTRA, 1024, MVAPICH2X_SHMEM, now=0.0)
    inter = m.put(*INTER, 1024, MVAPICH2X_SHMEM, now=0.0)
    assert intra.remote_complete < inter.remote_complete


def test_small_message_latency_ordering():
    """Fig 2: SHMEM < GASNet < MPI-3.0 for small puts."""
    for size in (8, 64, 1024):
        times = {}
        for profile in (MVAPICH2X_SHMEM, GASNET, MPI3):
            m = model()
            times[profile.name] = m.put(*INTER, size, profile, now=0.0).remote_complete
        assert times["MVAPICH2-X SHMEM"] < times["GASNet"] < times["MPI-3.0"]


def test_large_message_shmem_beats_gasnet():
    """Fig 3: SHMEM sustains higher bandwidth than GASNet."""
    size = 1 << 20
    shmem = model().put(*INTER, size, MVAPICH2X_SHMEM, now=0.0).remote_complete
    gasnet = model().put(*INTER, size, GASNET, now=0.0).remote_complete
    assert shmem < gasnet


def test_contention_on_shared_nic():
    """16 back-to-back transfers through one NIC serialize."""
    m = model()
    one = m.put(*INTER, 65536, MVAPICH2X_SHMEM, now=0.0).remote_complete
    m2 = model()
    last = 0.0
    for src in range(16):
        last = m2.put(src, 16 + src, 65536, MVAPICH2X_SHMEM, now=0.0).remote_complete
    assert last > 10 * one


def test_get_blocking_roundtrip_exceeds_put():
    m = model()
    put = m.put(*INTER, 1024, MVAPICH2X_SHMEM, now=0.0).remote_complete
    get = model().get(*INTER, 1024, MVAPICH2X_SHMEM, now=0.0)
    assert get > put - 1e-9  # get pays the request leg too


def test_amo_offload_vs_am_emulation():
    """GASNet atomics (AM through target CPU) cost more than NIC AMOs."""
    nic = model(TITAN).amo(*INTER, CRAY_SHMEM, now=0.0)
    am = model(TITAN).amo(*INTER, GASNET, now=0.0)
    assert am > nic


def test_amo_serializes_on_target_unit():
    m = model()
    first = m.amo(0, 16, MVAPICH2X_SHMEM, now=0.0)
    second = m.amo(1, 16, MVAPICH2X_SHMEM, now=0.0)
    assert second > first


def test_iput_native_only():
    m = model()
    with pytest.raises(ValueError):
        m.iput(*INTER, 10, 4, MVAPICH2X_SHMEM, now=0.0)  # not native
    t = model(TITAN).iput(*INTER, 10, 4, CRAY_SHMEM, now=0.0)
    assert t.remote_complete > 0


def test_iput_cheaper_than_per_element_puts():
    nelems = 256
    native = model(TITAN)
    t_iput = native.iput(*INTER, nelems, 4, CRAY_SHMEM, now=0.0).remote_complete
    looped = model(TITAN)
    now = 0.0
    for _ in range(nelems):
        now = max(now, 0.0)
        tt = looped.put(*INTER, 4, CRAY_SHMEM, now=now)
        now = tt.local_complete
    looped_done = tt.remote_complete
    assert t_iput < looped_done / 3


def test_iget_native_only():
    with pytest.raises(ValueError):
        model().iget(*INTER, 10, 4, GASNET, now=0.0)
    done = model(TITAN).iget(*INTER, 10, 4, CRAY_SHMEM, now=0.0)
    assert done > 0


def test_am_request_charges_target_cpu():
    m = model()
    t = m.am_request(*INTER, 32, GASNET, now=0.0)
    assert t.remote_complete > t.local_complete
    rt = model().am_roundtrip(*INTER, 32, GASNET, now=0.0)
    assert rt > t.remote_complete - 1e-9


def test_barrier_cost_grows_logarithmically():
    m = model(STAMPEDE, 512)
    c2 = m.barrier_cost(2, MVAPICH2X_SHMEM)
    c16 = m.barrier_cost(16, MVAPICH2X_SHMEM)
    c512 = m.barrier_cost(512, MVAPICH2X_SHMEM)
    assert c2 < c16 < c512
    assert c16 == pytest.approx(4 * c2)
    assert m.barrier_cost(1, MVAPICH2X_SHMEM) > 0


def test_reduction_cost_grows_with_size_and_pes():
    m = model(STAMPEDE, 64)
    assert m.reduction_cost(16, 8, MVAPICH2X_SHMEM) < m.reduction_cost(
        16, 8192, MVAPICH2X_SHMEM
    )
    assert m.reduction_cost(4, 64, MVAPICH2X_SHMEM) < m.reduction_cost(
        64, 64, MVAPICH2X_SHMEM
    )


def test_negative_sizes_rejected():
    m = model()
    with pytest.raises(ValueError):
        m.put(*INTER, -1, MVAPICH2X_SHMEM, now=0.0)
    with pytest.raises(ValueError):
        m.get(*INTER, -1, MVAPICH2X_SHMEM, now=0.0)
    with pytest.raises(ValueError):
        m.barrier_cost(0, MVAPICH2X_SHMEM)


def test_reset_clears_timelines():
    m = model()
    m.put(*INTER, 1 << 20, MVAPICH2X_SHMEM, now=0.0)
    assert any(t.busy_time > 0 for t in m.timelines()["tx"])
    m.reset()
    assert all(t.busy_time == 0 for group in m.timelines().values() for t in group)


def test_conduit_registry():
    assert set(CONDUITS) == {
        "cray-shmem",
        "mvapich2x-shmem",
        "gasnet",
        "mpi3",
        "cray-mpich",
        "dmapp-caf",
    }
    assert get_conduit("Cray SHMEM") is CRAY_SHMEM
    with pytest.raises(KeyError):
        get_conduit("ucx")


def test_conduit_validation():
    with pytest.raises(ValueError):
        ConduitProfile(
            name="bad",
            o_put_us=0.1,
            o_get_us=0.1,
            o_amo_us=0.1,
            o_barrier_us=0.1,
            amo_offload=True,
            iput_native=False,
            iput_elem_gap_us=0.0,
            eager_threshold=1024,
            rendezvous_extra_us=0.0,
            bw_efficiency=1.5,
        )


def test_key_profile_properties():
    """The properties the paper's analysis hinges on."""
    assert CRAY_SHMEM.iput_native
    assert not MVAPICH2X_SHMEM.iput_native  # Sec V-B2: loops over putmem
    assert not GASNET.iput_native
    assert CRAY_SHMEM.amo_offload and MVAPICH2X_SHMEM.amo_offload
    assert not GASNET.amo_offload  # atomics via AMs
    assert MPI3.o_put_us > GASNET.o_put_us > MVAPICH2X_SHMEM.o_put_us
