"""Free-list allocator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.allocator import FreeListAllocator, OutOfMemoryError


def test_basic_alloc_free():
    a = FreeListAllocator(1024)
    off = a.malloc(100)
    assert off % 16 == 0
    assert a.size_of(off) == 112  # rounded to alignment
    a.free(off)
    assert a.bytes_allocated == 0
    assert a.bytes_free == 1024


def test_offsets_disjoint():
    a = FreeListAllocator(4096)
    offs = [a.malloc(64) for _ in range(16)]
    spans = sorted((o, o + a.size_of(o)) for o in offs)
    for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
        assert e0 <= s1


def test_zero_size_allocations_are_distinct():
    a = FreeListAllocator(256)
    x = a.malloc(0)
    y = a.malloc(0)
    assert x != y


def test_exhaustion_raises():
    a = FreeListAllocator(128)
    a.malloc(64)
    a.malloc(48)
    with pytest.raises(OutOfMemoryError):
        a.malloc(64)


def test_free_then_reuse():
    a = FreeListAllocator(128)
    off = a.malloc(128)
    with pytest.raises(OutOfMemoryError):
        a.malloc(16)
    a.free(off)
    assert a.malloc(128) == off


def test_coalescing_recovers_full_block():
    a = FreeListAllocator(4096)
    offs = [a.malloc(256) for _ in range(16)]
    # Free in an interleaved order to exercise both merge directions.
    for o in offs[::2] + offs[1::2]:
        a.free(o)
    a.check_invariants()
    assert a.malloc(4096) == 0  # fully coalesced


def test_double_free_rejected():
    a = FreeListAllocator(256)
    off = a.malloc(16)
    a.free(off)
    with pytest.raises(ValueError):
        a.free(off)


def test_free_of_bogus_offset_rejected():
    a = FreeListAllocator(256)
    with pytest.raises(ValueError):
        a.free(13)


def test_bad_construction():
    with pytest.raises(ValueError):
        FreeListAllocator(0)
    with pytest.raises(ValueError):
        FreeListAllocator(100, alignment=3)
    with pytest.raises(ValueError):
        FreeListAllocator(7, alignment=16)  # smaller than one unit


def test_negative_size_rejected():
    a = FreeListAllocator(256)
    with pytest.raises(ValueError):
        a.malloc(-1)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(0, 300)),
            st.tuples(st.just("free"), st.integers(0, 40)),
        ),
        max_size=80,
    )
)
def test_random_workload_invariants(ops):
    """Any malloc/free interleaving preserves accounting invariants."""
    a = FreeListAllocator(8192, alignment=8)
    live: list[int] = []
    for op, arg in ops:
        if op == "malloc":
            try:
                live.append(a.malloc(arg))
            except OutOfMemoryError:
                pass
        elif live:
            a.free(live.pop(arg % len(live)))
        a.check_invariants()
    assert a.bytes_allocated == sum(a.size_of(o) for o in live)
