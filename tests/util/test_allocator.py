"""Free-list allocator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.allocator import FreeListAllocator, OutOfMemoryError


def test_basic_alloc_free():
    a = FreeListAllocator(1024)
    off = a.malloc(100)
    assert off % 16 == 0
    assert a.size_of(off) == 112  # rounded to alignment
    a.free(off)
    assert a.bytes_allocated == 0
    assert a.bytes_free == 1024


def test_offsets_disjoint():
    a = FreeListAllocator(4096)
    offs = [a.malloc(64) for _ in range(16)]
    spans = sorted((o, o + a.size_of(o)) for o in offs)
    for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
        assert e0 <= s1


def test_zero_size_allocations_are_distinct():
    a = FreeListAllocator(256)
    x = a.malloc(0)
    y = a.malloc(0)
    assert x != y


def test_exhaustion_raises():
    a = FreeListAllocator(128)
    a.malloc(64)
    a.malloc(48)
    with pytest.raises(OutOfMemoryError):
        a.malloc(64)


def test_free_then_reuse():
    a = FreeListAllocator(128)
    off = a.malloc(128)
    with pytest.raises(OutOfMemoryError):
        a.malloc(16)
    a.free(off)
    assert a.malloc(128) == off


def test_coalescing_recovers_full_block():
    a = FreeListAllocator(4096)
    offs = [a.malloc(256) for _ in range(16)]
    # Free in an interleaved order to exercise both merge directions.
    for o in offs[::2] + offs[1::2]:
        a.free(o)
    a.check_invariants()
    assert a.malloc(4096) == 0  # fully coalesced


def test_double_free_rejected():
    a = FreeListAllocator(256)
    off = a.malloc(16)
    a.free(off)
    with pytest.raises(ValueError):
        a.free(off)


def test_free_of_bogus_offset_rejected():
    a = FreeListAllocator(256)
    with pytest.raises(ValueError):
        a.free(13)


def test_bad_construction():
    with pytest.raises(ValueError):
        FreeListAllocator(0)
    with pytest.raises(ValueError):
        FreeListAllocator(100, alignment=3)
    with pytest.raises(ValueError):
        FreeListAllocator(7, alignment=16)  # smaller than one unit


def test_negative_size_rejected():
    a = FreeListAllocator(256)
    with pytest.raises(ValueError):
        a.malloc(-1)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(0, 300)),
            st.tuples(st.just("free"), st.integers(0, 40)),
        ),
        max_size=80,
    )
)
def test_random_workload_invariants(ops):
    """Any malloc/free interleaving preserves accounting invariants."""
    a = FreeListAllocator(8192, alignment=8)
    live: list[int] = []
    for op, arg in ops:
        if op == "malloc":
            try:
                live.append(a.malloc(arg))
            except OutOfMemoryError:
                pass
        elif live:
            a.free(live.pop(arg % len(live)))
        a.check_invariants()
    assert a.bytes_allocated == sum(a.size_of(o) for o in live)


# ---------------------------------------------------------------------------
# Property tests (hypothesis): alloc/free sequences preserve the
# allocator's invariants under any interleaving of operations.
# ---------------------------------------------------------------------------

from hypothesis import stateful


@settings(max_examples=80, deadline=None)
@given(sizes=st.lists(st.integers(0, 512), min_size=1, max_size=40))
def test_property_live_blocks_never_overlap(sizes):
    """Whatever we ask for, granted spans are aligned and disjoint."""
    a = FreeListAllocator(16384, alignment=32)
    live = []
    for size in sizes:
        try:
            live.append(a.malloc(size))
        except OutOfMemoryError:
            break
    spans = sorted((o, o + a.size_of(o)) for o in live)
    for off, end in spans:
        assert off % 32 == 0 and (end - off) % 32 == 0
        assert 0 <= off <= end <= 16384
    for (_, e0), (s1, _) in zip(spans, spans[1:]):
        assert e0 <= s1


@settings(max_examples=80, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 256), min_size=1, max_size=24),
    free_order=st.randoms(use_true_random=False),
)
def test_property_full_free_coalesces_to_one_block(sizes, free_order):
    """Freeing everything — in any order — recovers the whole arena."""
    a = FreeListAllocator(8192, alignment=16)
    live = []
    for size in sizes:
        try:
            live.append(a.malloc(size))
        except OutOfMemoryError:
            break
    free_order.shuffle(live)
    for off in live:
        a.free(off)
        a.check_invariants()
    assert a.bytes_allocated == 0
    assert a.live_blocks == 0
    # Fully coalesced: one allocation can claim the entire arena again.
    assert a.malloc(8192) == 0


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(0, 400)),
            st.tuples(st.just("free"), st.integers(0, 63)),
        ),
        max_size=120,
    )
)
def test_property_byte_conservation(ops):
    """allocated + free == usable capacity at every step."""
    a = FreeListAllocator(10000, alignment=16)  # ragged tail: 10000 % 16 != 0
    usable = 10000 - 10000 % 16
    live = []
    for op, arg in ops:
        if op == "malloc":
            try:
                live.append(a.malloc(arg))
            except OutOfMemoryError:
                pass
        elif live:
            a.free(live.pop(arg % len(live)))
        assert a.bytes_allocated + a.bytes_free == usable
        assert a.live_blocks == len(live)


class AllocatorMachine(stateful.RuleBasedStateMachine):
    """Stateful exploration: hypothesis drives arbitrary malloc/free
    interleavings and shrinks any invariant-violating command sequence
    to a minimal reproducer."""

    def __init__(self):
        super().__init__()
        self.alloc = FreeListAllocator(4096, alignment=16)
        self.live: dict[int, int] = {}  # offset -> requested size

    offsets = stateful.Bundle("offsets")

    @stateful.rule(target=offsets, size=st.integers(0, 300))
    def do_malloc(self, size):
        try:
            off = self.alloc.malloc(size)
        except OutOfMemoryError:
            return stateful.multiple()
        assert off not in self.live
        assert self.alloc.size_of(off) >= size
        self.live[off] = size
        return off

    @stateful.rule(off=stateful.consumes(offsets))
    def do_free(self, off):
        if off not in self.live:  # already freed via a duplicate draw
            with pytest.raises(ValueError):
                self.alloc.free(off)
            return
        self.alloc.free(off)
        del self.live[off]
        with pytest.raises(ValueError):
            self.alloc.size_of(off)

    @stateful.invariant()
    def invariants_hold(self):
        self.alloc.check_invariants()
        assert self.alloc.live_blocks == len(self.live)
        assert self.alloc.bytes_allocated == sum(
            self.alloc.size_of(o) for o in self.live
        )


TestAllocatorStateMachine = AllocatorMachine.TestCase
TestAllocatorStateMachine.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
