"""Statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import geomean, percent_gain, speedup, summarize


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0])
    assert s.n == 3
    assert s.mean == pytest.approx(2.0)
    assert s.minimum == 1.0
    assert s.maximum == 3.0
    assert s.stddev == pytest.approx(math.sqrt(2 / 3))


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_geomean_known():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([3.0]) == pytest.approx(3.0)


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([])


def test_speedup_and_gain():
    assert speedup(10.0, 5.0) == pytest.approx(2.0)
    assert percent_gain(10.0, 8.0) == pytest.approx(20.0)
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)


def test_percent_gain_rejects_nonpositive_times():
    # Regression: baseline == 0 used to divide by zero instead of
    # getting the same validation speedup has.
    with pytest.raises(ValueError):
        percent_gain(0.0, 1.0)
    with pytest.raises(ValueError):
        percent_gain(1.0, 0.0)
    with pytest.raises(ValueError):
        percent_gain(-2.0, 1.0)


def test_summarize_ddof():
    values = [1.0, 2.0, 3.0]
    # Default stays the historical population stddev (ddof=0).
    assert summarize(values).stddev == pytest.approx(math.sqrt(2 / 3))
    assert summarize(values, ddof=0).stddev == pytest.approx(math.sqrt(2 / 3))
    # Bessel's correction: sample variance of [1,2,3] is exactly 1.
    assert summarize(values, ddof=1).stddev == pytest.approx(1.0)
    with pytest.raises(ValueError):
        summarize(values, ddof=3)
    with pytest.raises(ValueError):
        summarize(values, ddof=-1)
    with pytest.raises(ValueError):
        summarize([5.0], ddof=1)


@given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=30))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) * 0.999 <= g <= max(values) * 1.001


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
def test_summary_bounds(values):
    s = summarize(values)
    # allow a few ulps: float summation can round the mean marginally
    # past an extremum when all values are nearly identical
    tol = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
    assert s.minimum - tol <= s.mean <= s.maximum + tol
    assert s.stddev >= 0
