"""Remote-pointer packing (paper Section IV-D's 20/36/8 layout)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitpack import (
    FLAG_BITS,
    IMAGE_BITS,
    MAX_FLAGS,
    MAX_IMAGE,
    MAX_OFFSET,
    NIL,
    OFFSET_BITS,
    RemotePointer,
    pack_remote_pointer,
    unpack_remote_pointer,
)


def test_layout_is_the_papers():
    assert (IMAGE_BITS, OFFSET_BITS, FLAG_BITS) == (20, 36, 8)
    assert MAX_IMAGE == 2**20 - 1
    assert MAX_OFFSET == 2**36 - 1
    assert MAX_FLAGS == 255


def test_nil_is_zero_word():
    assert NIL == 0
    ptr = unpack_remote_pointer(NIL)
    assert ptr.is_nil
    assert ptr.image == 0 and ptr.offset == 0 and ptr.flags == 0


def test_pack_known_value():
    word = pack_remote_pointer(1, 0, 0)
    assert word == 1 << 44  # image in the top 20 bits
    assert pack_remote_pointer(0, 1, 0) == 1 << 8
    assert pack_remote_pointer(0, 0, 1) == 1


def test_fits_64_bits_at_extremes():
    word = pack_remote_pointer(MAX_IMAGE, MAX_OFFSET, MAX_FLAGS)
    assert word == 2**64 - 1


@given(
    image=st.integers(0, MAX_IMAGE),
    offset=st.integers(0, MAX_OFFSET),
    flags=st.integers(0, MAX_FLAGS),
)
def test_roundtrip(image, offset, flags):
    word = pack_remote_pointer(image, offset, flags)
    assert 0 <= word < 2**64
    ptr = unpack_remote_pointer(word)
    assert (ptr.image, ptr.offset, ptr.flags) == (image, offset, flags)
    assert ptr.pack() == word


@given(
    a=st.tuples(st.integers(0, MAX_IMAGE), st.integers(0, MAX_OFFSET)),
    b=st.tuples(st.integers(0, MAX_IMAGE), st.integers(0, MAX_OFFSET)),
)
def test_injective(a, b):
    """Distinct (image, offset) pairs never collide — required for the
    MCS tail compare-and-swap to identify qnodes."""
    wa = pack_remote_pointer(a[0], a[1])
    wb = pack_remote_pointer(b[0], b[1])
    assert (wa == wb) == (a == b)


@pytest.mark.parametrize(
    "image,offset,flags",
    [(-1, 0, 0), (MAX_IMAGE + 1, 0, 0), (0, -1, 0), (0, MAX_OFFSET + 1, 0), (0, 0, 256)],
)
def test_out_of_range_rejected(image, offset, flags):
    with pytest.raises(ValueError):
        pack_remote_pointer(image, offset, flags)
    with pytest.raises(ValueError):
        RemotePointer(image=image, offset=offset, flags=flags)


def test_unpack_rejects_non_64bit():
    with pytest.raises(ValueError):
        unpack_remote_pointer(-1)
    with pytest.raises(ValueError):
        unpack_remote_pointer(1 << 64)
