"""Table / figure rendering."""

import pytest

from repro.util.tables import Series, Table, format_bytes, render_figure


def test_format_bytes_powers():
    assert format_bytes(8) == "8B"
    assert format_bytes(1024) == "1KB"
    assert format_bytes(4096) == "4KB"
    assert format_bytes(1048576) == "1MB"
    assert format_bytes(3 * 1024**3) == "3GB"


def test_format_bytes_non_power():
    assert format_bytes(1536) == "1.5KB"


def test_table_renders_all_rows():
    t = Table("Title", ["a", "b"])
    t.add_row(1, "x")
    t.add_row(22, "yy")
    text = t.render()
    assert "Title" in text
    lines = text.splitlines()
    assert len(lines) == 2 + 1 + 1 + 2  # title, rule, header, sep, rows
    assert "22" in text and "yy" in text


def test_table_rejects_wrong_arity():
    t = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_series_accessors():
    s = Series("lbl")
    s.add(1, 2.0)
    s.add(2, 3.0)
    assert s.xs == [1, 2]
    assert s.ys == [2.0, 3.0]


def test_render_figure_aligns_series():
    a = Series("A")
    b = Series("B")
    for x in (1, 2, 3):
        a.add(x, float(x))
        b.add(x, float(x * 10))
    text = render_figure("Fig", "n", "y", [a, b])
    assert "A" in text and "B" in text and "30" in text


def test_render_figure_rejects_mismatched_x():
    a = Series("A")
    b = Series("B")
    a.add(1, 1.0)
    b.add(2, 1.0)
    with pytest.raises(ValueError):
        render_figure("Fig", "n", "y", [a, b])


def test_float_formatting_compact():
    t = Table("T", ["v"])
    t.add_row(0.000123456)
    t.add_row(123456.789)
    t.add_row(1.5)
    text = t.render()
    assert "1.235e-04" in text
    assert "1.235e+05" in text
    assert "1.5" in text
