"""Unit tests for ``BatchSpec.vector_index``.

The spec compiles a plan's per-element byte offsets once; ``vector_index``
turns them into the exact ``(expanded, index, lo, hi)`` argument set of
``PEMemory.scatter_at``/``gather_at`` for a concrete array base, picking
the element-view index for aligned viewable sizes and the byte-expanded
index otherwise, and memoizing per base offset.
"""

import numpy as np
import pytest

from repro.comm.base import BatchSpec

# Two 3-element lines with element stride 2, elements 8 bytes wide:
# elements {0, 2, 4} and {10, 12, 14} relative to the array base.
ELEMS = np.array([0, 2, 4, 10, 12, 14], dtype=np.int64)


def lines_spec(elem_size=8, with_rel_elem=True):
    return BatchSpec(
        kind="lines",
        ncalls=2,
        nelems_per_call=3,
        stride=2,
        rel_index=ELEMS * elem_size,
        min_elem=0,
        max_elem=14,
        rel_elem=ELEMS if with_rel_elem else None,
        elem_size=elem_size,
    )


def test_aligned_base_uses_element_view_index():
    spec = lines_spec()
    expanded, index, lo, hi = spec.vector_index(16)
    assert not expanded
    assert index.tolist() == (ELEMS + 2).tolist()  # 16 bytes = 2 elements
    assert lo == 16
    assert hi == 16 + 14 * 8 + 8


def test_unaligned_base_byte_expands():
    spec = lines_spec()
    expanded, index, lo, hi = spec.vector_index(17)
    assert expanded
    want = ((ELEMS * 8)[:, None] + np.arange(8)[None, :]).reshape(-1) + 17
    assert index.tolist() == want.tolist()
    assert lo == 17 and hi == 17 + 14 * 8 + 8
    # Expanded indices cover exactly [lo, hi) at the extremes.
    assert int(index.min()) == lo and int(index.max()) == hi - 1


def test_viewless_elem_size_byte_expands():
    spec = lines_spec(elem_size=3)
    expanded, index, lo, hi = spec.vector_index(9)  # 9 % 3 == 0, but no view
    assert expanded
    want = ((ELEMS * 3)[:, None] + np.arange(3)[None, :]).reshape(-1) + 9
    assert index.tolist() == want.tolist()
    assert lo == 9 and hi == 9 + 14 * 3 + 3


def test_missing_rel_elem_byte_expands():
    spec = lines_spec(with_rel_elem=False)
    expanded, index, _, _ = spec.vector_index(16)
    assert expanded
    assert index.size == ELEMS.size * 8


def test_memo_hits_and_invalidates_per_base():
    spec = lines_spec()
    _, index_a, _, _ = spec.vector_index(16)
    _, index_b, _, _ = spec.vector_index(16)
    assert index_a is index_b  # memo hit: same array object
    _, index_c, lo_c, _ = spec.vector_index(32)  # base moved: rebuilt
    assert index_c is not index_a
    assert lo_c == 32
    assert index_c.tolist() == (ELEMS + 4).tolist()
    # Flipping back re-derives the first base correctly.
    _, index_d, lo_d, _ = spec.vector_index(16)
    assert lo_d == 16 and index_d.tolist() == index_a.tolist()


def test_expanded_rel_cached_across_bases():
    spec = lines_spec()
    _, index_a, _, _ = spec.vector_index(17)
    _, index_b, _, _ = spec.vector_index(25)
    assert (index_b - index_a).tolist() == [8] * index_a.size
    assert spec._expanded_rel is not None  # built once, reused


def test_elem_size_required():
    spec = BatchSpec(
        kind="runs",
        ncalls=1,
        nelems_per_call=4,
        stride=1,
        rel_index=np.arange(4, dtype=np.int64) * 8,
        min_elem=0,
        max_elem=3,
    )
    with pytest.raises(ValueError):
        spec.vector_index(0)
