"""Zero-length RMA is free: no network pricing, no clock advance, no
trace record, no timestamp publication — across put/get/iput/iget."""

import numpy as np
import pytest

from repro import shmem, trace
from repro.runtime.context import current
from repro.runtime.launcher import Job


def _reservation_count(job):
    return sum(t.reservations for tls in job.network.timelines().values() for t in tls)


@pytest.mark.parametrize("op", ["put", "get", "iput", "iget"])
def test_zero_length_rma_is_free(op):
    job = Job(2)
    layer = shmem.attach(job)
    tracer = trace.attach(job)

    def kernel():
        arr = layer.alloc_array((16,), np.int64)
        # alloc barriers may price; snapshot after them
        reservations_before = _reservation_count(job)
        before = current().clock.now
        if op == "put":
            layer.put(arr, np.empty(0, dtype=np.int64), 1)
        elif op == "get":
            got = layer.get(arr, 0, 1)
            assert got.size == 0 and got.dtype == np.int64
        elif op == "iput":
            layer.iput(arr, np.empty(0, dtype=np.int64), tst=2, sst=1, nelems=0, pe=1)
        else:
            got = layer.iget(arr, tst=1, sst=2, nelems=0, pe=1)
            assert got.size == 0 and got.dtype == np.int64
        assert current().clock.now == before  # nothing priced, nothing merged
        assert layer._pending[current().pe] == 0.0  # no remote completion pending
        assert _reservation_count(job) == reservations_before
        return True

    assert all(job.run(kernel))
    # no RMA event was recorded for the empty transfers (barriers may be)
    for rma_op in ("put", "get", "iput", "iget"):
        assert tracer.count(rma_op) == 0


def test_zero_length_put_does_not_publish_timestamp():
    job = Job(2)
    layer = shmem.attach(job)

    def kernel():
        arr = layer.alloc_array((4,), np.int64)
        me = current().pe
        if me == 0:
            layer.put(arr, np.empty(0, dtype=np.int64), 1)
            layer.iput(arr, np.empty(0, dtype=np.int64), tst=1, sst=1, nelems=0, pe=1)
        return True

    assert all(job.run(kernel))
    # nothing was deposited at PE 1, so its memory saw no write at all
    assert job.memories[1].last_write_time == 0.0


def test_zero_length_rma_still_validates_arguments():
    job = Job(2)
    layer = shmem.attach(job)

    def kernel():
        arr = layer.alloc_array((4,), np.int64)
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            layer.put(arr, empty, 99)  # PE out of range
        with pytest.raises(ValueError):
            layer.iput(arr, empty, tst=1, sst=1, nelems=-1, pe=1)
        with pytest.raises(ValueError):
            layer.iget(arr, tst=1, sst=1, nelems=-1, pe=1)
        # the zero-length span itself is always in bounds (nothing is
        # addressed), even at the end of the array
        assert layer.get(arr, 0, 1, offset=arr.size).size == 0
        return True

    assert all(job.run(kernel))
