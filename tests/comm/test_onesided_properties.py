"""Property-based invariants of the shared one-sided engine, exercised
through every layer that subclasses it."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import gasnet, mpirma, shmem
from repro.runtime.context import current
from repro.runtime.launcher import Job

LAYER_FACTORIES = {
    "shmem": lambda job: shmem.attach(job),
    "gasnet": lambda job: gasnet.attach(job),
    "mpirma": lambda job: mpirma.attach(job),
}

dtypes = st.sampled_from([np.int64, np.float64, np.int32, np.uint8])


@settings(max_examples=20, deadline=None)
@given(
    layer_name=st.sampled_from(sorted(LAYER_FACTORIES)),
    dtype=dtypes,
    size=st.integers(1, 64),
    offset_frac=st.floats(0, 1),
)
def test_put_get_roundtrip_any_layer(layer_name, dtype, size, offset_frac):
    """write-then-read returns the written data at every offset, layer,
    and dtype."""
    offset = int(offset_frac * (size - 1))
    nelems = size - offset

    def kernel():
        layer = current().job.get_layer(layer_name if layer_name != "mpirma" else "mpirma")
        arr = layer.alloc_array((size,), dtype)
        me, n = current().pe, current().job.num_pes
        data = (np.arange(nelems) % 120 + me).astype(dtype)
        layer.put(arr, data, (me + 1) % n, offset)
        layer.barrier_all()
        got = layer.get(arr, nelems, (me + 1) % n, offset)
        peer_data = (np.arange(nelems) % 120 + (me - 1) % n).astype(dtype)
        assert np.array_equal(arr.local[offset:], peer_data)
        assert np.array_equal(got, data)
        return True

    job = Job(2)
    LAYER_FACTORIES[layer_name](job)
    assert all(job.run(kernel))


@settings(max_examples=15, deadline=None)
@given(
    profile=st.sampled_from(["cray-shmem", "mvapich2x-shmem", "gasnet"]),
    tst=st.integers(1, 5),
    sst=st.integers(1, 5),
    nelems=st.integers(0, 10),
)
def test_iput_equivalent_across_native_and_looped(profile, tst, sst, nelems):
    """Functional results of iput are identical whether the conduit is
    native (one descriptor) or loops over putmem."""
    size = 64

    def kernel():
        layer = current().job.get_layer("shmem") if profile != "gasnet" else current().job.get_layer("gasnet")
        arr = layer.alloc_array((size,), np.int64)
        arr.local[:] = -3
        src = np.arange(60)
        layer.iput(arr, src, tst=tst, sst=sst, nelems=nelems, pe=current().pe)
        layer.quiet()
        expect = np.full(size, -3, dtype=np.int64)
        if nelems:
            expect[: nelems * tst : tst] = src[: nelems * sst : sst]
        assert np.array_equal(arr.local, expect)
        return True

    job = Job(1)
    if profile == "gasnet":
        gasnet.attach(job)
    else:
        shmem.attach(job, profile)
    assert all(job.run(kernel))


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["fadd", "swap", "set", "and", "or", "xor"]), st.integers(0, 255)),
        min_size=1,
        max_size=12,
    )
)
def test_atomic_sequences_match_sequential_semantics(ops):
    """A single-PE sequence of atomics equals plain Python arithmetic."""

    def kernel():
        layer = current().job.get_layer("shmem")
        word = layer.alloc_array((1,), np.int64)
        expect = 0
        for op, v in ops:
            old = int(layer.atomic(word, 0, 0, op, v))
            assert old == expect
            if op == "fadd":
                expect += v
            elif op in ("swap", "set"):
                expect = v
            elif op == "and":
                expect &= v
            elif op == "or":
                expect |= v
            elif op == "xor":
                expect ^= v
        assert int(word.local[0]) == expect
        return True

    job = Job(1)
    shmem.attach(job)
    assert all(job.run(kernel))


@settings(max_examples=10, deadline=None)
@given(n_puts=st.integers(0, 8), nbytes=st.integers(1, 1 << 16))
def test_quiet_clears_pending_and_is_idempotent(n_puts, nbytes):
    def kernel():
        layer = current().job.get_layer("shmem")
        arr = layer.alloc_array((1 << 16,), np.uint8)
        me, n = current().pe, current().job.num_pes
        layer.barrier_all()
        for _ in range(n_puts):
            layer.put(arr, np.zeros(nbytes, dtype=np.uint8), (me + 1) % n)
        layer.quiet()
        assert layer._pending[me] == 0.0
        t = current().clock.now
        layer.quiet()
        assert current().clock.now == t  # second quiet free
        layer.barrier_all()
        return True

    job = Job(2, "stampede", heap_bytes=1 << 18)
    shmem.attach(job)
    assert all(job.run(kernel))


def test_clock_never_regresses_through_any_op_sequence():
    """Virtual clocks are monotone through a mixed workload."""

    def kernel():
        layer = current().job.get_layer("shmem")
        me, n = current().pe, current().job.num_pes
        arr = layer.alloc_array((256,), np.int64)
        checkpoints = [current().clock.now]
        for i in range(10):
            target = (me + 1 + i) % n
            layer.put(arr, np.arange(16), target, offset=16 * (i % 8))
            checkpoints.append(current().clock.now)
            if i % 3 == 0:
                layer.atomic(arr, target, 0, "fadd", 1)
                checkpoints.append(current().clock.now)
            if i % 4 == 0:
                layer.quiet()
                checkpoints.append(current().clock.now)
        layer.barrier_all()
        checkpoints.append(current().clock.now)
        assert all(a <= b for a, b in zip(checkpoints, checkpoints[1:]))
        return True

    job = Job(4)
    shmem.attach(job)
    assert all(job.run(kernel))
