"""Shared test fixtures and helpers."""

from __future__ import annotations

import faulthandler

import numpy as np
import pytest

from repro.sim.topology import Machine

#: Per-test wall-clock ceiling when pytest-timeout is not installed
#: (CI installs it and passes ``--timeout``; this backstop keeps a hang
#: regression from stalling a local run indefinitely).
HANG_CEILING_S = 300.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item):
    if item.config.pluginmanager.hasplugin("timeout"):
        # pytest-timeout owns the ceiling (CI); don't double-arm.
        return (yield)
    faulthandler.dump_traceback_later(HANG_CEILING_S, exit=True)
    try:
        return (yield)
    finally:
        faulthandler.cancel_dump_traceback_later()

#: A small machine with 2 cores per node so a 4-PE job spans 2 nodes —
#: inter-node paths get exercised without launching 17+ threads.
TEST_MACHINE = Machine(
    name="TestBox",
    nodes=64,
    processor="test",
    cores_per_node=2,
    interconnect="test-fabric",
    link_latency_us=1.0,
    link_bandwidth_Bpus=1000.0,
    intra_latency_us=0.2,
    intra_bandwidth_Bpus=4000.0,
    amo_process_us=0.1,
    cpu_am_process_us=0.3,
    am_attentiveness_us=0.4,
)


@pytest.fixture
def test_machine() -> Machine:
    return TEST_MACHINE


@pytest.fixture(autouse=True)
def _seed_numpy():
    np.random.seed(12345)
    yield
