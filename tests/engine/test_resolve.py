"""resolve_engine coercion rules and per-engine PE caps."""

import pytest

from repro.engine import resolve_engine
from repro.engine.base import Engine, EngineError
from repro.engine.cooperative import CooperativeEngine
from repro.engine.event import EventEngine
from repro.engine.threaded import ThreadedEngine
from repro.explore import RandomWalk, Scheduler
from repro.runtime.launcher import Job


def test_default_is_threaded():
    eng = resolve_engine(None, None)
    assert isinstance(eng, ThreadedEngine)
    assert eng.name == "threaded"


def test_scheduler_selects_cooperative():
    sched = Scheduler(RandomWalk(1))
    eng = resolve_engine(None, sched)
    assert isinstance(eng, CooperativeEngine)
    assert eng.scheduler is sched


def test_names_resolve():
    assert isinstance(resolve_engine("threaded"), ThreadedEngine)
    assert isinstance(resolve_engine("event"), EventEngine)
    sched = Scheduler(RandomWalk(1))
    assert isinstance(resolve_engine("cooperative", sched), CooperativeEngine)


def test_instance_passes_through():
    eng = EventEngine()
    assert resolve_engine(eng) is eng


def test_cooperative_requires_scheduler():
    with pytest.raises(ValueError, match="requires scheduler"):
        resolve_engine("cooperative")


def test_named_engine_rejects_scheduler():
    with pytest.raises(ValueError, match="cannot be combined"):
        resolve_engine("event", Scheduler(RandomWalk(1)))


def test_foreign_instance_rejects_scheduler():
    with pytest.raises(ValueError, match="not both"):
        resolve_engine(ThreadedEngine(), Scheduler(RandomWalk(1)))


def test_unknown_name_and_type():
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("warp")
    with pytest.raises(TypeError):
        resolve_engine(42)


def test_engines_are_single_job():
    eng = EventEngine()
    Job(2, heap_bytes=1 << 15, engine=eng)
    with pytest.raises(EngineError, match="already bound"):
        Job(2, heap_bytes=1 << 15, engine=eng)


def test_threaded_pe_cap():
    assert Engine.max_pes == 4096
    with pytest.raises(ValueError, match="num_pes"):
        Job(5000, heap_bytes=1 << 15)  # threaded cap


def test_event_engine_raises_the_cap():
    assert EventEngine.max_pes > Engine.max_pes
    job = Job(5000, heap_bytes=1 << 12, engine="event")
    assert job.num_pes == 5000
    with pytest.raises(ValueError, match="num_pes"):
        Job(EventEngine.max_pes + 1, heap_bytes=1 << 12, engine="event")
