"""EventEngine behaviour: steps, waits, deadlock and failure reporting."""

import numpy as np
import pytest

from repro.engine import DelayStep, Done, WaitStep, WouldBlock, drive
from repro.engine.event import EventDeadlock
from repro.engine.steps import BarrierStep, alloc_array_step
from repro.runtime.context import current
from repro.runtime.launcher import Job, JobFailure
from repro.shmem import attach as shmem_attach

HEAP = 1 << 15


def _job(n, engine="event"):
    job = Job(n, heap_bytes=HEAP, engine=engine)
    return job, shmem_attach(job)


def test_plain_bodies_still_run():
    job, layer = _job(4)

    def body():
        return current().pe * 10

    assert job.run(body) == [0, 10, 20, 30]


def test_delay_step_advances_virtual_clock():
    job, _ = _job(3)

    def body():
        ctx = current()
        return DelayStep(5.5, lambda: Done(ctx.clock.now))

    assert job.run(body) == [5.5] * 3


def test_wait_step_wakes_on_remote_write():
    job, layer = _job(2)

    def body():
        ctx = current()

        def ready(flag):
            if ctx.pe == 0:
                layer.put(flag, np.array([7], dtype=np.int64), 1)
                return Done("writer")
            return WaitStep(layer, flag, "eq", 7, lambda: Done(int(flag.local[0])))

        return alloc_array_step(layer, (1,), np.int64, ready)

    assert job.run(body) == ["writer", 7]


def test_inline_blocking_wait_raises_wouldblock():
    job, layer = _job(2)

    def body():
        ctx = current()

        def go(flag):
            if ctx.pe == 1:
                layer.wait_until(flag, "eq", 1)  # inline: only PE 1 ever here
            return Done(None)

        return alloc_array_step(layer, (1,), np.int64, go)

    with pytest.raises(JobFailure) as exc_info:
        job.run(body)
    (pe, exc), = exc_info.value.failures
    assert pe == 1
    assert isinstance(exc, WouldBlock)


def test_unreleasable_barrier_is_deadlock():
    job, layer = _job(3)

    def body():
        if current().pe == 0:
            return Done("skipped the barrier")
        return BarrierStep(layer, lambda: Done("released"))

    with pytest.raises(EventDeadlock, match=r"PE\(s\) \[1, 2\]"):
        job.run(body)


def test_failure_aborts_parked_pes():
    """A crash must not hang PEs already parked at the barrier."""
    job, layer = _job(4)

    def body():
        def after_alloc(_flag):
            if current().pe == 3:
                raise RuntimeError("boom on PE 3")
            return BarrierStep(layer, lambda: Done("released"))

        return alloc_array_step(layer, (1,), np.int64, after_alloc)

    with pytest.raises(JobFailure) as exc_info:
        job.run(body)
    records = [(pe, type(e).__name__, str(e)) for pe, e in exc_info.value.failures]
    assert records == [(3, "RuntimeError", "boom on PE 3")]


def test_drive_and_event_agree_on_one_pe_program():
    def make_body(layer):
        def body():
            ctx = current()
            return DelayStep(
                2.0,
                lambda: alloc_array_step(
                    layer, (4,), np.float64,
                    lambda arr: Done((arr.local.shape, ctx.clock.now)),
                ),
            )

        return body

    outs = []
    for engine in ("threaded", "event"):
        job, layer = _job(1, engine=engine)
        outs.append(job.run(make_body(layer)))
    assert outs[0] == outs[1]


def test_drive_rejects_unknown_step():
    class Weird:
        pass

    assert drive(Weird()) is not None  # non-steps pass through untouched
    assert drive(Done(5)) == 5
