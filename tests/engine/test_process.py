"""The process engine: bit-identity to threaded, failure transport,
segment lifetime, and feature guards.

The process engine's correctness oracle is the threaded engine: on any
workload whose threaded execution is schedule-independent, both engines
must produce the same per-PE results, the same final virtual clocks,
and the same trace digest — the arithmetic is unchanged, only the
memory it runs against moved into shared segments.
"""

import os
import pickle

import numpy as np
import pytest

from repro import caf
from repro.engine import EngineError, ProcessEngine, RemotePEFailure, resolve_engine
from repro.explore import trace_digest
from repro.runtime.context import current
from repro.runtime.launcher import Job, JobFailure, run_spmd
from repro.shmem import attach as shmem_attach
from repro.trace.events import attach as trace_attach

HEAP = 1 << 20


def _ring_kernel():
    import repro.shmem as sh

    ctx = current()
    me, n = sh.my_pe(), sh.num_pes()
    src = sh.shmalloc_array(16, np.int64)
    dst = sh.shmalloc_array(16, np.int64)
    src.local[:] = me * 1000 + np.arange(16)
    sh.barrier_all()
    sh.put(dst, src.local, (me + 1) % n)
    sh.barrier_all()
    # Atomics reserve the node's shared AMO timeline, so exactly one PE
    # is active per phase — concurrent atomics would resolve contention
    # in (schedule-dependent) arrival order on any engine.
    flag = sh.shmalloc_array(1, np.int64)
    for active in range(n):
        if me == active:
            sh.atomic_fadd(flag, me + 1, (me + 1) % n)
        sh.barrier_all()
    return (ctx.clock.now, int(dst.local.sum()), int(flag.local[0]))


def _run_ring(engine, num_pes=4):
    job = Job(num_pes, heap_bytes=HEAP, engine=engine)
    shmem_attach(job)
    tracer = trace_attach(job)
    results = job.run(_ring_kernel)
    return results, trace_digest(tracer)


def test_bit_identity_ring_puts_and_atomics():
    threaded = _run_ring(None)
    process = _run_ring("process")
    assert process == threaded


def test_bit_identity_section_assignment_multinode():
    """A strided coarray section put across nodes (exercises the shared
    NIC timelines) must match threaded bit-for-bit."""

    def kernel():
        ctx = current()
        a = caf.coarray((20, 16), np.float32)
        a[...] = 0
        caf.sync_all()
        partner = caf.this_image() % caf.num_images() + 1
        a.on(partner)[0:20:2, 0:16:4] = float(caf.this_image())
        caf.sync_all()
        return ctx.clock.now, float(a.local.sum())

    def run(engine):
        # 18 images on stampede (16 cores/node) spans two nodes.
        return caf.launch(kernel, 18, "stampede", heap_bytes=HEAP, engine=engine)

    assert run("process") == run(None)


def test_results_cross_the_process_boundary():
    results = run_spmd(lambda: current().pe * 2, 4, engine="process")
    assert results == [0, 2, 4, 6]


def test_picklable_failure_keeps_its_type():
    def crash():
        import repro.shmem as sh

        if sh.my_pe() == 1:
            raise ValueError("boom from PE 1")
        sh.barrier_all()

    job = Job(4, heap_bytes=HEAP, engine="process")
    shmem_attach(job)
    with pytest.raises(JobFailure) as ei:
        job.run(crash)
    assert ei.value.pe == 1
    assert isinstance(ei.value.failures[0][1], ValueError)
    assert isinstance(ei.value.__cause__, ValueError)


def test_unpicklable_failure_wrapped_with_traceback():
    class Unpicklable(RuntimeError):
        def __init__(self, fh):
            super().__init__("cannot pickle me")
            self.fh = fh  # an open file handle never pickles

    def crash():
        import repro.shmem as sh

        if sh.my_pe() == 0:
            with open(os.devnull) as fh:
                raise Unpicklable(fh)
        sh.barrier_all()

    job = Job(2, heap_bytes=HEAP, engine="process")
    shmem_attach(job)
    with pytest.raises(JobFailure) as ei:
        job.run(crash)
    exc = ei.value.failures[0][1]
    assert isinstance(exc, RemotePEFailure)
    assert "Unpicklable" in str(exc)
    assert "cannot pickle me" in str(exc)


def test_child_death_without_report_becomes_failure():
    def die():
        import repro.shmem as sh

        if sh.my_pe() == 1:
            os._exit(17)  # no payload, no exception — just gone
        sh.barrier_all()

    job = Job(3, heap_bytes=HEAP, engine="process")
    shmem_attach(job)
    with pytest.raises(JobFailure) as ei:
        job.run(die)
    assert ei.value.pe == 1
    assert isinstance(ei.value.failures[0][1], RemotePEFailure)
    assert "died" in str(ei.value.failures[0][1])


def test_segments_unlinked_after_failed_run():
    """Satellite 6's no-leak requirement: a failed (aborted) run must
    unlink its /dev/shm segments eagerly, not wait for GC."""
    job = Job(2, heap_bytes=HEAP, engine="process")
    shmem_attach(job)
    names = job.engine._heap.segment_names
    for name in names:
        assert os.path.exists(f"/dev/shm/{name}")
    with pytest.raises(JobFailure):
        job.run(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    assert job.engine._heap.closed
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")


def test_segments_unlinked_on_engine_cleanup():
    job = Job(2, heap_bytes=HEAP, engine="process")
    names = job.engine._heap.segment_names
    job.engine.cleanup()
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")


def test_one_shot_launch_releases_segments_immediately():
    """A successful one-shot launch (``run_spmd``/``caf.launch``/
    ``shmem.launch``) must unlink its /dev/shm segments as soon as it
    returns — deterministically, not whenever GC collects the job."""
    before = {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    run_spmd(lambda: current().pe, 2, heap_bytes=HEAP, engine="process")
    caf.launch(lambda: caf.this_image(), 2, heap_bytes=HEAP, engine="process")
    import repro.shmem as sh

    sh.launch(lambda: sh.my_pe(), 2, heap_bytes=HEAP, engine="process")
    after = {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    assert after <= before  # no new segments survive the launches


def test_teams_raise_on_process_engine():
    def body():
        return caf.form_team(1)

    with pytest.raises(JobFailure) as ei:
        caf.launch(body, 2, heap_bytes=HEAP, engine="process")
    assert "team" in str(ei.value.__cause__).lower()


def test_group_collective_agreement_raises():
    from repro.engine.process import _GroupCollectivesUnsupported

    state = _GroupCollectivesUnsupported(2, aborted=lambda: False)
    with pytest.raises(EngineError, match="subset collective"):
        state.agree(None, "fp", lambda: 1)


def test_resolve_engine_process():
    eng = resolve_engine("process")
    assert isinstance(eng, ProcessEngine)
    assert eng.cross_process
    with pytest.raises(ValueError, match="scheduler"):
        resolve_engine("process", scheduler=object())


def test_max_pes_ceiling():
    with pytest.raises(ValueError, match=r"\[1, 64\]"):
        Job(65, heap_bytes=HEAP, engine="process")


def test_remote_pe_failure_pickles():
    exc = RemotePEFailure("PE 3 process died without reporting a result")
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, RemotePEFailure)
    assert str(clone) == str(exc)
