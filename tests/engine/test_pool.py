"""WorkerPool unit tests, including the lost-wakeup regression.

PE bodies block on each other (barriers), so every submitted body must
get a worker promptly — a stranded submission deadlocks the whole job.
"""

import threading
import time

from repro.engine.pool import WorkerPool, shared_pool


def _drain(pool: WorkerPool, events: list, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    for ev in events:
        assert ev.wait(max(0.0, deadline - time.monotonic())), (
            "submitted task never ran (worker stranded)"
        )


def test_runs_submitted_tasks():
    pool = WorkerPool()
    events = [threading.Event() for _ in range(8)]
    for ev in events:
        pool.submit(ev.set)
    _drain(pool, events)


def test_workers_are_reused():
    pool = WorkerPool()
    ran = []
    done = threading.Event()

    def task():
        ran.append(threading.current_thread().name)
        if len(ran) == 6:
            done.set()

    # Sequential submissions with a settle gap: the single idle worker
    # must pick every one up without a new spawn.
    pool.submit(task)
    time.sleep(0.1)
    for _ in range(5):
        pool.submit(task)
        time.sleep(0.02)
    assert done.wait(10.0)
    assert pool.stats["spawned"] < 6


def test_lost_wakeup_regression_interdependent_bodies():
    """N mutually-blocking bodies submitted back-to-back must all run.

    Regression: ``submit`` used to only notify when ``_idle > 0``, so
    two quick submissions could both count the *same* idle worker and
    strand one task in the queue.  With bodies that rendezvous (as PE
    bodies do at barriers), the stranded task means the running ones
    never finish either — a deadlock.
    """
    pool = WorkerPool()
    n = 6
    # Park one worker in the idle wait first so the race window exists.
    warm = threading.Event()
    pool.submit(warm.set)
    assert warm.wait(5.0)
    time.sleep(0.05)

    gate = threading.Barrier(n, timeout=10.0)
    done = [threading.Event() for _ in range(n)]

    def body(i):
        gate.wait()  # blocks until ALL n bodies are running
        done[i].set()

    for i in range(n):
        pool.submit(lambda i=i: body(i))
    _drain(pool, done)


def test_submit_burst_many_rounds():
    """Hammer the submit race: every round, every task must complete."""
    pool = WorkerPool()
    for _ in range(20):
        k = 4
        gate = threading.Barrier(k, timeout=10.0)
        events = [threading.Event() for _ in range(k)]

        def body(i):
            gate.wait()
            events[i].set()

        for i in range(k):
            pool.submit(lambda i=i: body(i))
        _drain(pool, events)


def test_shared_pool_is_singleton():
    assert shared_pool() is shared_pool()


def test_worker_survives_task_exception():
    pool = WorkerPool()

    def boom():
        raise RuntimeError("task failure must not kill the worker")

    pool.submit(boom)
    time.sleep(0.05)
    ev = threading.Event()
    pool.submit(ev.set)
    assert ev.wait(10.0)


def test_failed_counter_counts_escaped_exceptions():
    pool = WorkerPool()
    assert pool.stats["failed"] == 0
    for _ in range(3):
        pool.submit(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    deadline = time.monotonic() + 10.0
    while pool.stats["failed"] < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert pool.stats["failed"] == 3
    # The workers survived ordinary exceptions and stay usable.
    ev = threading.Event()
    pool.submit(ev.set)
    assert ev.wait(10.0)


def test_base_exception_is_reraised_not_swallowed():
    """Regression: ``_worker`` used to eat ``BaseException`` bare, so a
    ``KeyboardInterrupt`` delivered on a worker thread simply vanished.
    It must now propagate off the worker (killing it) and be counted."""
    pool = WorkerPool()
    seen = []
    orig_hook = threading.excepthook
    threading.excepthook = lambda args: seen.append(args.exc_type)
    try:
        pool.submit(lambda: (_ for _ in ()).throw(KeyboardInterrupt()))
        deadline = time.monotonic() + 10.0
        while not seen and time.monotonic() < deadline:
            time.sleep(0.01)
    finally:
        threading.excepthook = orig_hook
    assert seen == [KeyboardInterrupt]
    stats = pool.stats
    assert stats["failed"] == 1
    assert stats["workers"] == 0  # the dying worker took itself off the books
    # The pool recovers: the next submission spawns a fresh worker.
    ev = threading.Event()
    pool.submit(ev.set)
    assert ev.wait(10.0)


def test_shared_pool_race_creates_exactly_one_pool(monkeypatch):
    """Many first callers racing through ``shared_pool`` must all get
    the same (single) pool instance."""
    import repro.engine.pool as pool_mod

    created = []
    orig_init = WorkerPool.__init__

    def counting_init(self, *a, **kw):
        created.append(self)
        orig_init(self, *a, **kw)

    monkeypatch.setattr(pool_mod, "_pool", None)
    monkeypatch.setattr(WorkerPool, "__init__", counting_init)
    n = 16
    start = threading.Barrier(n, timeout=10.0)
    got = [None] * n

    def caller(i):
        start.wait()  # maximize the first-call race window
        got[i] = pool_mod.shared_pool()

    threads = [threading.Thread(target=caller, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert len(created) == 1
    assert all(g is created[0] for g in got)
