"""WorkerPool unit tests, including the lost-wakeup regression.

PE bodies block on each other (barriers), so every submitted body must
get a worker promptly — a stranded submission deadlocks the whole job.
"""

import threading
import time

from repro.engine.pool import WorkerPool, shared_pool


def _drain(pool: WorkerPool, events: list, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    for ev in events:
        assert ev.wait(max(0.0, deadline - time.monotonic())), (
            "submitted task never ran (worker stranded)"
        )


def test_runs_submitted_tasks():
    pool = WorkerPool()
    events = [threading.Event() for _ in range(8)]
    for ev in events:
        pool.submit(ev.set)
    _drain(pool, events)


def test_workers_are_reused():
    pool = WorkerPool()
    ran = []
    done = threading.Event()

    def task():
        ran.append(threading.current_thread().name)
        if len(ran) == 6:
            done.set()

    # Sequential submissions with a settle gap: the single idle worker
    # must pick every one up without a new spawn.
    pool.submit(task)
    time.sleep(0.1)
    for _ in range(5):
        pool.submit(task)
        time.sleep(0.02)
    assert done.wait(10.0)
    assert pool.stats["spawned"] < 6


def test_lost_wakeup_regression_interdependent_bodies():
    """N mutually-blocking bodies submitted back-to-back must all run.

    Regression: ``submit`` used to only notify when ``_idle > 0``, so
    two quick submissions could both count the *same* idle worker and
    strand one task in the queue.  With bodies that rendezvous (as PE
    bodies do at barriers), the stranded task means the running ones
    never finish either — a deadlock.
    """
    pool = WorkerPool()
    n = 6
    # Park one worker in the idle wait first so the race window exists.
    warm = threading.Event()
    pool.submit(warm.set)
    assert warm.wait(5.0)
    time.sleep(0.05)

    gate = threading.Barrier(n, timeout=10.0)
    done = [threading.Event() for _ in range(n)]

    def body(i):
        gate.wait()  # blocks until ALL n bodies are running
        done[i].set()

    for i in range(n):
        pool.submit(lambda i=i: body(i))
    _drain(pool, done)


def test_submit_burst_many_rounds():
    """Hammer the submit race: every round, every task must complete."""
    pool = WorkerPool()
    for _ in range(20):
        k = 4
        gate = threading.Barrier(k, timeout=10.0)
        events = [threading.Event() for _ in range(k)]

        def body(i):
            gate.wait()
            events[i].set()

        for i in range(k):
            pool.submit(lambda i=i: body(i))
        _drain(pool, events)


def test_shared_pool_is_singleton():
    assert shared_pool() is shared_pool()


def test_worker_survives_task_exception():
    pool = WorkerPool()

    def boom():
        raise RuntimeError("task failure must not kill the worker")

    pool.submit(boom)
    time.sleep(0.05)
    ev = threading.Event()
    pool.submit(ev.set)
    assert ev.wait(10.0)
