"""Three-way engine equivalence over randomized step programs.

The engines promise *bit-identical* virtual times and traces for any
program whose threaded execution is schedule-independent.  The seeded
generator below emits such programs: each phase picks exactly one
active PE which issues a random run of puts/gets/atomics/delays, then
everyone barriers — no two PEs ever contend for a timeline, so the
threaded, cooperative (explore scheduler), and event engines must agree
on every PE's final value, final virtual clock, and the full trace
digest.  A FaultPlan rides the same pipeline on every engine (decisions
are per-PE op-index driven), so transient-fault runs and single-crash
failure records must match too.
"""

import random

import numpy as np
import pytest

from repro.engine.steps import BarrierStep, Done, alloc_array_step
from repro.explore import RandomWalk, Scheduler, trace_digest
from repro.runtime.context import current
from repro.runtime.launcher import Job, JobFailure
from repro.shmem import attach as shmem_attach
from repro.sim.faults import FaultPlan, InjectedCrash
from repro.trace.events import attach as trace_attach

HEAP = 1 << 15
ELEMS = 8

ENGINES = ("threaded", "cooperative", "event")


def make_script(seed: int, num_pes: int, phases: int):
    """A deterministic single-active-PE-per-phase op script."""
    rng = random.Random(seed)
    script = []
    for _ in range(phases):
        active = rng.randrange(num_pes)
        ops = []
        for _ in range(rng.randint(1, 3)):
            kind = rng.choice(("put", "get", "atomic", "delay"))
            ops.append((kind, rng.randrange(num_pes), rng.randint(1, ELEMS)))
        script.append((active, ops))
    return script


def make_body(layer, script):
    def body():
        ctx = current()
        pe = ctx.pe
        payload = np.arange(ELEMS, dtype=np.int64) + pe

        def run_phase(arr, i):
            if i == len(script):
                return Done((int(arr.local.sum()), ctx.clock.now))
            active, ops = script[i]
            if pe == active:
                for kind, target, k in ops:
                    if kind == "put":
                        layer.put(arr, payload[:k], target, offset=0)
                    elif kind == "get":
                        layer.get(arr, k, target, offset=0)
                    elif kind == "atomic":
                        layer.atomic(arr, target, 0, "fadd", k)
                    else:
                        ctx.clock.advance(float(k))
            return BarrierStep(layer, lambda: run_phase(arr, i + 1))

        return alloc_array_step(layer, (ELEMS,), np.int64, lambda a: run_phase(a, 0))

    return body


def run_once(engine_name: str, seed: int, num_pes: int, phases: int,
             faults=None):
    kwargs = {"faults": faults} if faults is not None else {}
    if engine_name == "cooperative":
        job = Job(num_pes, heap_bytes=HEAP,
                  scheduler=Scheduler(RandomWalk(seed)), **kwargs)
    else:
        job = Job(num_pes, heap_bytes=HEAP, engine=engine_name, **kwargs)
    layer = shmem_attach(job)
    tracer = trace_attach(job)
    body = make_body(layer, make_script(seed, num_pes, phases))
    try:
        results = job.run(body)
    except JobFailure as jf:
        records = [(pe, type(e).__name__, str(e)) for pe, e in jf.failures]
        return {"failed": records, "digest": None}
    return {"results": results, "digest": trace_digest(tracer)}


@pytest.mark.parametrize("seed", [11, 23, 47, 101])
def test_three_way_equivalence_random_programs(seed):
    runs = {name: run_once(name, seed, num_pes=6, phases=5) for name in ENGINES}
    base = runs["threaded"]
    assert "results" in base
    for name in ENGINES[1:]:
        assert runs[name]["results"] == base["results"], (
            f"{name} results diverge from threaded (seed {seed})"
        )
        assert runs[name]["digest"] == base["digest"], (
            f"{name} trace digest diverges from threaded (seed {seed})"
        )


@pytest.mark.parametrize("seed", [5, 19])
def test_three_way_equivalence_under_transient_faults(seed):
    plan = FaultPlan(seed=seed, transient_rate=0.4, max_failures=2)
    runs = {
        name: run_once(name, seed, num_pes=4, phases=4, faults=plan)
        for name in ENGINES
    }
    base = runs["threaded"]
    assert "results" in base, f"threaded failed: {base.get('failed')}"
    for name in ENGINES[1:]:
        assert runs[name] == base, f"{name} diverges under faults (seed {seed})"


def test_three_way_single_crash_failure_records_match():
    # Crash PE 2 at its 3rd operation; the record (pe, type, message)
    # must be engine-independent because the fault decision is priced
    # off the per-PE op index, not off wall-clock scheduling.
    plan = FaultPlan(seed=7, crash_at={2: 3})
    runs = {
        name: run_once(name, seed=31, num_pes=5, phases=6, faults=plan)
        for name in ENGINES
    }
    base = runs["threaded"]
    assert "failed" in base
    assert len(base["failed"]) == 1
    pe, kind, _msg = base["failed"][0]
    assert (pe, kind) == (2, InjectedCrash.__name__)
    for name in ENGINES[1:]:
        assert runs[name]["failed"] == base["failed"], (
            f"{name} failure records diverge from threaded"
        )
