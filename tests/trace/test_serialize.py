"""Trace save/load round-trips."""

import json

import numpy as np
import pytest

from repro import shmem, trace
from repro.runtime.launcher import Job
from repro.trace import serialize


def _make_trace():
    job = Job(3)
    shmem.attach(job)
    tracer = trace.attach(job)

    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((32,), np.int64)
        shmem.barrier_all()
        shmem.put(x, np.zeros(32, dtype=np.int64), (me + 1) % n)
        shmem.atomic_fadd(x, 1, pe=0)
        shmem.barrier_all()

    job.run(kernel)
    return tracer


def test_roundtrip(tmp_path):
    tracer = _make_trace()
    path = tmp_path / "trace.json"
    serialize.save(tracer, path)
    events = serialize.load(path)
    assert len(events) == tracer.count()
    originals = tracer.all_events()
    assert events == originals


def test_document_shape(tmp_path):
    tracer = _make_trace()
    doc = serialize.to_dict(tracer)
    assert doc["format"] == serialize.FORMAT_VERSION
    assert doc["num_pes"] == 3
    assert doc["machine"] == "Stampede"
    assert all(len(rec) == 11 for rec in doc["events"])
    assert all(rec[6] >= 1 for rec in doc["events"])
    # the document is valid JSON end to end
    assert json.loads(json.dumps(doc)) == doc


def test_loads_v1_documents_without_calls():
    tracer = _make_trace()
    doc = serialize.to_dict(tracer)
    v1 = dict(doc, format=1, events=[rec[:6] for rec in doc["events"]])
    events = serialize.events_from_dict(v1)
    assert len(events) == tracer.count()
    assert all(e.calls == 1 for e in events)


def test_loads_v2_documents_without_sync_fields():
    tracer = _make_trace()
    doc = serialize.to_dict(tracer)
    v2 = dict(doc, format=2, events=[rec[:7] for rec in doc["events"]])
    events = serialize.events_from_dict(v2)
    assert len(events) == tracer.count()
    assert all(e.footprint == () and e.meta == () and not e.internal for e in events)


def test_v3_sync_fields_roundtrip(tmp_path):
    """Footprints, internal flags and sync metadata survive save/load."""
    job = Job(2)
    shmem.attach(job)
    tracer = trace.attach(job, capture_sync=True)

    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((32,), np.int64)
        shmem.barrier_all()
        if me == 0:
            shmem.put(x, np.arange(8, dtype=np.int64), 1)
            shmem.quiet()
        shmem.barrier_all()

    job.run(kernel)
    path = tmp_path / "trace.json"
    serialize.save(tracer, path)
    events = serialize.load(path)
    assert events == tracer.all_events()
    puts = [e for e in events if e.op == "put"]
    assert puts and puts[0].footprint and puts[0].addr >= 0
    barriers = [e for e in events if e.op == "barrier"]
    assert barriers and all(e.meta and e.meta[0] == "b" for e in barriers)


def test_loads_v3_documents_under_v4():
    """A v3 document (pre-fault-ops) loads unchanged under the v4
    reader — the record shape did not change, only the op vocabulary."""
    tracer = _make_trace()
    doc = serialize.to_dict(tracer)
    v3 = dict(doc, format=3)
    events = serialize.events_from_dict(v3)
    assert events == tracer.all_events()


def test_fault_and_retry_events_roundtrip(tmp_path):
    """Injected faults leave 'fault'/'retry' records in the trace and
    they survive save/load with attempt counts and op metadata."""
    from repro.sim.faults import FaultPlan

    job = Job(
        2,
        faults=FaultPlan(seed=13, transient_rate=0.6, max_failures=2,
                         latency_rate=0.0),
    )
    shmem.attach(job)
    tracer = trace.attach(job)

    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((16,), np.int64)
        shmem.barrier_all()
        for _ in range(12):
            shmem.put(x, np.zeros(16, dtype=np.int64), 1 - me)
        shmem.quiet()
        shmem.barrier_all()

    job.run(kernel)
    path = tmp_path / "faulted.json"
    serialize.save(tracer, path)
    events = serialize.load(path)
    assert events == tracer.all_events()
    retries = [e for e in events if e.op == "retry"]
    # 12 puts/PE at a 60% transient rate: retries are certain.
    assert retries
    assert all(e.internal for e in retries)
    assert all(e.meta == ("f", "put") for e in retries)
    assert all(e.calls >= 1 for e in retries)


def test_load_validates(tmp_path):
    tracer = _make_trace()
    doc = serialize.to_dict(tracer)

    bad = dict(doc, format=99)
    with pytest.raises(ValueError, match="format"):
        serialize.events_from_dict(bad)

    bad = dict(doc, events=[[7, "put", 0, 8, 0.0, 1.0]])
    with pytest.raises(ValueError, match="outside"):
        serialize.events_from_dict(bad)

    bad = dict(doc, events=[[0, "warp", 0, 8, 0.0, 1.0]])
    with pytest.raises(ValueError, match="unknown op"):
        serialize.events_from_dict(bad)

    bad = dict(doc, events=[[0, "put", 1, 8, 5.0, 1.0]])
    with pytest.raises(ValueError, match="ends before"):
        serialize.events_from_dict(bad)


def test_loaded_events_are_ordered(tmp_path):
    tracer = _make_trace()
    path = tmp_path / "t.json"
    serialize.save(tracer, path)
    events = serialize.load(path)
    assert all(a.t_start <= b.t_start for a, b in zip(events, events[1:]))
