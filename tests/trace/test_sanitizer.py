"""The happens-before ordering sanitizer (seeded violations + clean runs)."""

import json
import time

import numpy as np
import pytest

from repro import caf, shmem, trace
from repro.bench.dht import dht_benchmark
from repro.bench.harness import UHCAF_MV2X_SHMEM
from repro.bench.himeno import himeno_caf
from repro.runtime.launcher import Job, JobAborted
from repro.trace import sanitize as sanitize_cli
from repro.trace.sanitizer import OrderingViolation, check_events, check_tracer


def _kinds(report):
    return [f.kind for f in report.findings]


# ---------------------------------------------------------------------------
# Seeded violations (the ISSUE's negative tests)
# ---------------------------------------------------------------------------


def test_missing_quiet_detected():
    """Relaxed ordering + atomic flag handshake: the reader is ordered
    after the put (atomics synchronize) but no quiet intervenes, so the
    put may not have landed — the paper's Table II bug, seeded."""

    def kernel():
        me = caf.this_image()
        data = caf.coarray((8,), np.int64)
        flag = caf.coarray((1,), np.int64)
        data[:] = 0
        flag[:] = 0
        caf.sync_all()
        if me == 1:
            data.on(2)[:] = np.arange(8, dtype=np.int64)  # no quiet (relaxed)
            caf.atomic_define(flag, 2, 1)
        else:
            while caf.atomic_ref(flag, 2) != 1:
                time.sleep(0.0005)
            data.on(2).get(...)  # racy read under the weak model
        caf.sync_all()

    with pytest.raises(OrderingViolation) as exc:
        caf.launch(kernel, num_images=2, ordering="relaxed", sanitize=True)
    kinds = _kinds(exc.value.report)
    assert "missing-quiet" in kinds
    assert "unordered-conflict" not in kinds  # the handshake DID order them


def test_unordered_conflict_detected():
    """Two images update the same remote slot with no lock between the
    same pair of barriers: flagged even though quiets are present."""

    def kernel():
        me = caf.this_image()
        data = caf.coarray((4,), np.int64)
        data[:] = 0
        caf.sync_all()
        data.on(1)[0] = me  # both images write image 1's slot 0
        caf.sync_all()

    with pytest.raises(OrderingViolation) as exc:
        caf.launch(kernel, num_images=2, sanitize=True)
    assert "unordered-conflict" in _kinds(exc.value.report)


def test_lock_ordered_update_is_clean():
    """The same conflicting update under a coarray lock passes."""

    def kernel():
        lck = caf.lock_type()
        data = caf.coarray((4,), np.int64)
        data[:] = 0
        caf.sync_all()
        with lck.guard(1):
            v = int(data.on(1)[0])
            data.on(1)[0] = v + 1
        caf.sync_all()
        return int(data.local[0]) if caf.this_image() == 1 else None

    out = caf.launch(kernel, num_images=4, sanitize=True)
    assert out[0] == 4


# ---------------------------------------------------------------------------
# Lock-discipline findings (synthetic traces: the runtime's own locks
# cannot be made to misbehave this way, so the records are seeded)
# ---------------------------------------------------------------------------


def _v3_doc(events):
    return {"format": 3, "num_pes": 2, "machine": "Synthetic", "events": events}


def _unquiesced_release_doc():
    return _v3_doc(
        [
            [0, "lock_acquire", 1, 0, 0.0, 1.0, 1, -1, [], 0, ["la", 1, 1, 0, 1]],
            [0, "put", 1, 8, 1.0, 2.0, 1, 64, [[64, 8]], 0, []],
            [0, "lock_release", 1, 0, 2.0, 3.0, 1, -1, [], 0, ["lr", 1, 1, 0, 1]],
        ]
    )


def _cross_image_unlock_doc():
    return _v3_doc(
        [
            [0, "lock_acquire", 1, 0, 0.0, 1.0, 1, -1, [], 0, ["la", 1, 1, 0, 1]],
            [1, "lock_release", 1, 0, 1.0, 2.0, 1, -1, [], 0, ["lr", 1, 1, 0, 1]],
        ]
    )


def test_unquiesced_release_detected():
    from repro.trace.serialize import events_from_dict

    events = events_from_dict(_unquiesced_release_doc())
    report = check_events(events, 2)
    assert _kinds(report) == ["unquiesced-release"]


def test_cross_image_unlock_detected():
    from repro.trace.serialize import events_from_dict

    events = events_from_dict(_cross_image_unlock_doc())
    report = check_events(events, 2)
    assert _kinds(report) == ["cross-image-unlock"]


def test_unmatched_release_detected():
    from repro.trace.serialize import events_from_dict

    doc = _v3_doc(
        [[0, "lock_release", 1, 0, 1.0, 2.0, 1, -1, [], 0, ["lr", 1, 1, 0, 7]]]
    )
    report = check_events(events_from_dict(doc), 2)
    assert _kinds(report) == ["unmatched-release"]


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------


def test_cli_reports_findings(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(_unquiesced_release_doc()))
    assert sanitize_cli.main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "unquiesced-release" in out and "1 finding" in out


def test_cli_clean_trace_exits_zero(tmp_path, capsys):
    job = Job(2)
    shmem.attach(job)
    tracer = trace.attach(job, capture_sync=True)

    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((8,), np.int64)
        shmem.barrier_all()
        if me == 0:
            shmem.put(x, np.arange(8, dtype=np.int64), 1)
            shmem.quiet()
        shmem.barrier_all()
        if me == 1:
            shmem.get(x, 8, 1)
        shmem.barrier_all()

    job.run(kernel)
    from repro.trace import serialize

    path = tmp_path / "clean.json"
    serialize.save(tracer, path)
    assert sanitize_cli.main([str(path)]) == 0
    assert "0 finding" in capsys.readouterr().out


def test_cli_quiet_flag_and_bad_input(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(_cross_image_unlock_doc()))
    assert sanitize_cli.main([str(path), "--quiet"]) == 1
    assert capsys.readouterr().out == ""
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    assert sanitize_cli.main([str(garbled)]) == 2
    assert sanitize_cli.main([str(tmp_path / "absent.json")]) == 2


# ---------------------------------------------------------------------------
# Clean kernels: the sanitizer must not cry wolf
# ---------------------------------------------------------------------------


def test_dht_run_is_clean():
    elapsed = dht_benchmark(
        "stampede",
        UHCAF_MV2X_SHMEM,
        num_images=4,
        updates_per_image=6,
        slots_per_image=16,
        sanitize=True,
    )
    assert elapsed > 0


def test_himeno_run_is_clean():
    result = himeno_caf(
        "stampede", UHCAF_MV2X_SHMEM, 3, grid="XS", iterations=2, sanitize=True
    )
    assert result.mflops > 0


def test_locks_events_sync_images_are_clean():
    """Every sync primitive orders its data: lock handoff, event
    post/wait, and pairwise sync_images all pass the sanitizer."""

    def kernel():
        me = caf.this_image()
        data = caf.coarray((4,), np.int64)
        counter = caf.coarray((1,), np.int64)
        ev = caf.event_type()
        lck = caf.lock_type()
        data[:] = 0
        counter[:] = 0
        caf.sync_all()
        with lck.guard(1):
            v = int(counter.on(1)[0])
            counter.on(1)[0] = v + 1
        caf.sync_all()
        if me == 1:
            data.on(2)[:] = 7
            ev.post(2)
        elif me == 2:
            ev.wait()
            assert int(data.on(2).get(...)[0]) == 7
        caf.sync_all()
        if me == 1:
            data.on(2)[:] = 9
            caf.sync_images([2])
        elif me == 2:
            caf.sync_images([1])
            assert int(data.on(2).get(...)[0]) == 9
        caf.sync_all()
        return int(counter.local[0]) if me == 1 else None

    out = caf.launch(kernel, num_images=3, sanitize=True)
    assert out[0] == 3


def test_check_tracer_on_clean_shmem_run():
    job = Job(4)
    shmem.attach(job)
    tracer = trace.attach(job, capture_sync=True)

    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((16,), np.int64)
        shmem.barrier_all()
        shmem.put(x, np.full(16, me, dtype=np.int64), (me + 1) % n)
        shmem.quiet()
        shmem.barrier_all()
        shmem.get(x, 16, me)
        shmem.barrier_all()

    job.run(kernel)
    report = check_tracer(tracer)
    assert report.ok, report.render()
    assert report.stats["events"] > 0


# ---------------------------------------------------------------------------
# Fixed lock-path bugs stay fixed
# ---------------------------------------------------------------------------


def test_contended_mcs_release_is_fully_traced():
    """The MCS release's successor-pointer read used to bypass the
    tracer (raw ``memories[pe].read_scalar``); it must now appear as a
    traced local get on the releasing image."""
    job = Job(2)
    caf.attach(job)
    tracer = trace.attach(job, capture_sync=True)

    def kernel():
        rt = caf.current_runtime()
        rt.startup()
        me = caf.this_image()
        lck = caf.lock_type()
        token = caf.coarray((1,), np.int64)
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            caf.atomic_define(token, 2, 1)  # image 2: start contending
            time.sleep(0.05)  # let it enqueue behind us
            caf.unlock(lck, 1)  # handoff path: reads successor pointer
        else:
            rt.layer.wait_until(token.handle, "eq", 1)
            caf.lock(lck, 1)
            caf.unlock(lck, 1)
        caf.sync_all()

    job.run(kernel)
    local_reads = [
        e for e in tracer.events[0] if e.op == "get" and e.internal and e.target == 0
    ]
    assert local_reads, "successor-pointer read missing from the trace"
    assert all(e.nbytes == 8 and e.t_start == e.t_end for e in local_reads)
    report = check_tracer(tracer)
    assert report.ok, report.render()


def test_tas_acquire_checks_abort_before_first_attempt():
    """An image that starts acquiring after the job aborted must raise
    JobAborted without issuing a single remote atomic (the abort check
    used to run only after a failed cswap + backoff)."""
    job = Job(2)
    caf.attach(job, lock_algorithm="tas")
    tracer = trace.attach(job)

    def kernel():
        rt = caf.current_runtime()
        rt.startup()
        me = caf.this_image()
        lck = caf.lock_type()
        caf.sync_all()
        if me == 1:
            caf.lock(lck, 1)
            raise RuntimeError("boom")
        while not rt.job.aborted():
            time.sleep(0.001)
        try:
            caf.lock(lck, 1)
        except JobAborted:
            return "aborted-cleanly"
        return "acquired-after-abort"

    with pytest.raises(RuntimeError, match="boom"):
        job.run(kernel)
    assert not any(e.op == "atomic" for e in tracer.events[1])
