"""Communication tracing."""

import numpy as np
import pytest

from repro import caf, shmem, trace
from repro.runtime.launcher import Job
from repro.trace.events import TraceEvent, Tracer


def _traced_shmem_job(kernel, num_pes=4, **job_kw):
    job = Job(num_pes, **job_kw)
    shmem.attach(job)
    tracer = trace.attach(job)
    job.run(kernel)
    return tracer


def test_put_get_events_recorded():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((64,), np.int64)
        shmem.barrier_all()
        shmem.put(x, np.zeros(64, dtype=np.int64), (me + 1) % n)
        shmem.quiet()
        shmem.get(x, 64, (me + 1) % n)
        shmem.barrier_all()

    tracer = _traced_shmem_job(kernel)
    assert tracer.count("put") == 4
    assert tracer.count("get") == 4
    assert tracer.count("barrier") >= 8  # alloc barrier + 2 explicit
    assert tracer.bytes_moved() >= 4 * 2 * 64 * 8


def test_event_fields_and_ordering():
    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((8,), np.int64)
        shmem.barrier_all()
        if me == 0:
            shmem.put(x, np.arange(8), 1)
            shmem.atomic_fadd(x, 1, pe=1)
        shmem.barrier_all()

    tracer = _traced_shmem_job(kernel, num_pes=2)
    puts = [e for e in tracer.events[0] if e.op == "put"]
    atomics = [e for e in tracer.events[0] if e.op == "atomic"]
    assert len(puts) == 1 and len(atomics) == 1
    assert puts[0].target == 1 and puts[0].nbytes == 64
    assert atomics[0].nbytes == 8
    assert puts[0].t_end >= puts[0].t_start
    ordered = tracer.all_events()
    assert all(a.t_start <= b.t_start for a, b in zip(ordered, ordered[1:]))


def test_strided_events():
    def kernel():
        x = shmem.shmalloc_array((64,), np.int64)
        shmem.barrier_all()
        shmem.iput(x, np.arange(8), tst=2, sst=1, nelems=8, pe=shmem.my_pe())
        shmem.iget(x, tst=1, sst=2, nelems=8, pe=shmem.my_pe())
        shmem.barrier_all()

    job = Job(2)
    shmem.attach(job, "cray-shmem")
    tracer = trace.attach(job)
    job.run(kernel)
    assert tracer.count("iput") == 2
    assert tracer.count("iget") == 2


def test_non_native_iput_traces_as_puts():
    def kernel():
        x = shmem.shmalloc_array((64,), np.int64)
        shmem.barrier_all()
        shmem.iput(x, np.arange(8), tst=2, sst=1, nelems=8, pe=shmem.my_pe())
        shmem.barrier_all()

    job = Job(2)
    shmem.attach(job, "mvapich2x-shmem")
    tracer = trace.attach(job)
    job.run(kernel)
    assert tracer.count("iput") == 0
    assert tracer.count("put") == 2 * 8  # the loop-over-putmem reality


def test_comm_time_positive_and_bounded():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((1024,), np.int64)
        shmem.barrier_all()
        shmem.put(x, np.zeros(1024, dtype=np.int64), (me + 1) % n)
        shmem.barrier_all()

    tracer = _traced_shmem_job(kernel)
    for pe in range(4):
        assert tracer.comm_time(pe) > 0


def test_profile_table_renders():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((16,), np.int64)
        shmem.barrier_all()
        shmem.put(x, np.zeros(16, dtype=np.int64), (me + 1) % n)
        shmem.quiet()
        shmem.barrier_all()

    tracer = _traced_shmem_job(kernel)
    text = tracer.profile().render()
    assert "put" in text and "barrier" in text and "calls" in text


def test_timeline_renders():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((4096,), np.int64)
        shmem.barrier_all()
        for _ in range(3):
            shmem.put(x, np.zeros(4096, dtype=np.int64), (me + 1) % n)
            shmem.quiet()
        shmem.barrier_all()

    tracer = _traced_shmem_job(kernel, heap_bytes=1 << 20)
    strip = tracer.timeline(0)
    assert "PE 0 timeline" in strip
    assert "legend" in strip
    body = strip.splitlines()[1]
    assert any(ch in body for ch in "pqB")


def test_timeline_validation():
    job = Job(1)
    tracer = trace.attach(job)
    with pytest.raises(ValueError):
        tracer.timeline(5)
    assert "(no events)" in tracer.timeline(0)
    with pytest.raises(ValueError):
        tracer.timeline(0, width=2)


def test_record_rejects_unknown_op():
    tracer = Tracer(Job(1))
    with pytest.raises(ValueError, match="unknown trace op"):
        tracer.record(0, "teleport", 0, 0, 0.0, 1.0)


def test_attach_idempotent():
    job = Job(2)
    t1 = trace.attach(job)
    t2 = trace.attach(job)
    assert t1 is t2


def test_tracing_caf_program():
    """Tracing composes with the CAF runtime (its layer ops are traced)."""
    job = Job(3)
    caf.attach(job)
    tracer = trace.attach(job)

    def kernel():
        rt = caf.current_runtime()
        rt.startup()
        a = caf.coarray((32,), np.int64)
        caf.sync_all()
        a.on(caf.this_image() % caf.num_images() + 1)[0:32:2] = 5
        caf.sync_all()

    job.run(kernel)
    assert tracer.count() > 0
    assert tracer.count("barrier") > 0
    # CAF ordering inserts quiets; strided writes show as put or iput.
    assert tracer.count("put") + tracer.count("iput") >= 3


def test_duration_property():
    e = TraceEvent(pe=0, op="put", target=1, nbytes=8, t_start=1.0, t_end=3.5)
    assert e.duration == 2.5
