"""SHMEM collectives: reductions, broadcast, fcollect."""

import numpy as np
import pytest

from repro import shmem


def _reduction_kernel(op_name, expect_fn):
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        src = shmem.shmalloc_array((3,), np.int64)
        dst = shmem.shmalloc_array((3,), np.int64)
        src.local[:] = [me + 1, (me + 1) * 2, me % 2]
        getattr(shmem, f"{op_name}_to_all")(dst, src, 3)
        vals = [[p + 1, (p + 1) * 2, p % 2] for p in range(n)]
        expect = expect_fn(np.array(vals))
        assert np.array_equal(dst.local, expect), (dst.local, expect)
        return True

    return kernel


@pytest.mark.parametrize(
    "op,fn",
    [
        ("sum", lambda v: v.sum(axis=0)),
        ("prod", lambda v: v.prod(axis=0)),
        ("min", lambda v: v.min(axis=0)),
        ("max", lambda v: v.max(axis=0)),
        ("and", lambda v: np.bitwise_and.reduce(v, axis=0)),
        ("or", lambda v: np.bitwise_or.reduce(v, axis=0)),
        ("xor", lambda v: np.bitwise_xor.reduce(v, axis=0)),
    ],
)
def test_reductions(op, fn):
    assert all(shmem.launch(_reduction_kernel(op, fn), num_pes=4))


def test_reduction_float_dtype():
    def kernel():
        me = shmem.my_pe()
        src = shmem.shmalloc_array((2,), np.float64)
        dst = shmem.shmalloc_array((2,), np.float64)
        src.local[:] = [me + 0.5, 1.0]
        shmem.sum_to_all(dst, src, 2)
        n = shmem.num_pes()
        assert dst.local[0] == pytest.approx(sum(p + 0.5 for p in range(n)))
        assert dst.local[1] == pytest.approx(float(n))
        return True

    assert all(shmem.launch(kernel, num_pes=3))


def test_bitwise_reduction_rejects_float():
    def kernel():
        src = shmem.shmalloc_array((1,), np.float64)
        dst = shmem.shmalloc_array((1,), np.float64)
        shmem.and_to_all(dst, src, 1)

    with pytest.raises(RuntimeError, match="integer"):
        shmem.launch(kernel, num_pes=1)


def test_broadcast_skips_root_dest():
    def kernel():
        me = shmem.my_pe()
        src = shmem.shmalloc_array((4,), np.int64)
        dst = shmem.shmalloc_array((4,), np.int64)
        dst.local[:] = -1
        if me == 2:
            src.local[:] = [9, 8, 7, 6]
        shmem.broadcast(dst, src, 4, root=2)
        if me == 2:
            return list(dst.local) == [-1] * 4  # root untouched
        return list(dst.local) == [9, 8, 7, 6]

    assert all(shmem.launch(kernel, num_pes=4))


def test_broadcast_partial_count():
    def kernel():
        me = shmem.my_pe()
        src = shmem.shmalloc_array((4,), np.int64)
        dst = shmem.shmalloc_array((4,), np.int64)
        dst.local[:] = 0
        src.local[:] = [1, 2, 3, 4]
        shmem.broadcast(dst, src, 2, root=0)
        if me != 0:
            return list(dst.local) == [1, 2, 0, 0]
        return True

    assert all(shmem.launch(kernel, num_pes=3))


def test_fcollect_concatenates_in_pe_order():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        src = shmem.shmalloc_array((2,), np.int64)
        dst = shmem.shmalloc_array((2 * n,), np.int64)
        src.local[:] = [me * 10, me * 10 + 1]
        shmem.fcollect(dst, src, 2)
        expect = [v for p in range(n) for v in (p * 10, p * 10 + 1)]
        assert list(dst.local) == expect
        return True

    assert all(shmem.launch(kernel, num_pes=4))


def test_unknown_reduction_rejected():
    def kernel():
        src = shmem.shmalloc_array((1,), np.int64)
        dst = shmem.shmalloc_array((1,), np.int64)
        shmem._layer().to_all(dst, src, 1, "median")

    with pytest.raises(RuntimeError, match="unknown reduction"):
        shmem.launch(kernel, num_pes=1)


def test_collectives_advance_clock():
    def kernel():
        from repro.runtime.context import current

        src = shmem.shmalloc_array((128,), np.int64)
        dst = shmem.shmalloc_array((128,), np.int64)
        t0 = current().clock.now
        shmem.sum_to_all(dst, src, 128)
        return current().clock.now - t0

    out = shmem.launch(kernel, num_pes=4)
    assert all(dt > 0 for dt in out)
