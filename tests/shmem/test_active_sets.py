"""OpenSHMEM active-set collectives (PE_start, logPE_stride, PE_size)."""

import numpy as np
import pytest

from repro import shmem
from repro.runtime.groups import active_set_pes


def test_active_set_expansion():
    assert active_set_pes(0, 0, 4, 8) == (0, 1, 2, 3)
    assert active_set_pes(1, 1, 3, 8) == (1, 3, 5)
    assert active_set_pes(0, 2, 2, 8) == (0, 4)
    with pytest.raises(ValueError):
        active_set_pes(0, 0, 0, 8)
    with pytest.raises(ValueError):
        active_set_pes(4, 1, 4, 8)  # escapes the job
    with pytest.raises(ValueError):
        active_set_pes(0, -1, 2, 8)


def test_subset_barrier_only_synchronizes_members():
    def kernel():
        from repro.runtime.context import current

        me = shmem.my_pe()
        if me % 2 == 0:
            current().clock.advance(100.0 * (me + 1))
            shmem.barrier(0, 1, 3)  # PEs 0, 2, 4
            return current().clock.now
        return current().clock.now

    out = shmem.launch(kernel, num_pes=6)
    # members leave with a common (max-based) time, non-members untouched
    members = [out[0], out[2], out[4]]
    assert len({round(t, 6) for t in members}) == 1
    assert members[0] >= 500.0
    assert out[1] < 1.0 and out[3] < 1.0


def test_subset_reduction():
    def kernel():
        me = shmem.my_pe()
        src = shmem.shmalloc_array((2,), np.int64)
        dst = shmem.shmalloc_array((2,), np.int64)
        src.local[:] = [me, me * me]
        shmem.barrier_all()
        if me % 2 == 1:  # PEs 1, 3, 5
            shmem.sum_to_all_set(dst, src, 2, pe_start=1, log_pe_stride=1, pe_size=3)
        shmem.barrier_all()
        return list(dst.local)

    out = shmem.launch(kernel, num_pes=6)
    assert out[1] == [1 + 3 + 5, 1 + 9 + 25]
    assert out[3] == out[1] and out[5] == out[1]
    assert out[0] == [0, 0]  # non-members untouched


def test_subset_max():
    def kernel():
        me = shmem.my_pe()
        src = shmem.shmalloc_array((1,), np.int64)
        dst = shmem.shmalloc_array((1,), np.int64)
        src.local[0] = (me + 1) * 7
        shmem.barrier_all()
        if me < 2:
            shmem.max_to_all_set(dst, src, 1, pe_start=0, log_pe_stride=0, pe_size=2)
        shmem.barrier_all()
        return int(dst.local[0])

    out = shmem.launch(kernel, num_pes=4)
    assert out[0] == out[1] == 14
    assert out[2] == 0


def test_nonmember_barrier_rejected():
    def kernel():
        me = shmem.my_pe()
        if me == 3:
            shmem.barrier(0, 0, 2)  # PEs 0,1 only
        else:
            shmem.barrier(0, 0, 2) if me < 2 else None

    with pytest.raises(RuntimeError, match="does not belong"):
        shmem.launch(kernel, num_pes=4)


def test_disjoint_sets_interleave():
    """Two disjoint active sets barrier independently and repeatedly."""

    def kernel():
        me = shmem.my_pe()
        set_args = (0, 0, 2) if me < 2 else (2, 0, 2)
        for _ in range(5):
            shmem.barrier(*set_args)
        return True

    assert all(shmem.launch(kernel, num_pes=4))
