"""Remote atomics: correctness under real thread concurrency."""

import numpy as np
import pytest

from repro import shmem


def test_fadd_sums_under_contention():
    def kernel():
        c = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        for _ in range(50):
            shmem.atomic_fadd(c, 1, pe=0)
        shmem.barrier_all()
        return int(c.local[0]) if shmem.my_pe() == 0 else None

    out = shmem.launch(kernel, num_pes=6)
    assert out[0] == 6 * 50


def test_finc_and_inc():
    def kernel():
        c = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        old = shmem.atomic_finc(c, pe=0)
        shmem.atomic_inc(c, pe=0)
        shmem.barrier_all()
        return (old, int(c.local[0]) if shmem.my_pe() == 0 else None)

    out = shmem.launch(kernel, num_pes=4)
    olds = sorted(o for o, _ in out)
    assert out[0][1] == 8  # 4 fincs + 4 incs
    assert all(0 <= o < 8 for o in olds)
    assert len(set(olds)) == 4  # fincs returned distinct values... almost
    # (incs interleave, so distinctness of finc returns is not guaranteed
    # in general; at minimum they are within range and the sum is exact)


def test_swap_returns_old():
    def kernel():
        x = shmem.shmalloc_array((1,), np.int64)
        if shmem.my_pe() == 0:
            x.local[0] = 111
        shmem.barrier_all()
        if shmem.my_pe() == 1:
            old = shmem.atomic_swap(x, 222, pe=0)
            assert old == 111
        shmem.barrier_all()
        return int(x.local[0])

    out = shmem.launch(kernel, num_pes=2)
    assert out[0] == 222


def test_cswap_only_one_winner():
    def kernel():
        x = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        old = shmem.atomic_cswap(x, cond=0, value=shmem.my_pe() + 1, pe=0)
        shmem.barrier_all()
        return int(old)

    out = shmem.launch(kernel, num_pes=8)
    winners = [o for o in out if o == 0]
    assert len(winners) == 1


def test_fetch_and_set():
    def kernel():
        x = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if shmem.my_pe() == 1:
            shmem.atomic_set(x, 77, pe=0)
        shmem.barrier_all()
        return int(shmem.atomic_fetch(x, pe=0))

    assert shmem.launch(kernel, num_pes=3) == [77, 77, 77]


def test_bitwise_atomics():
    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((3,), np.int64)
        x.local[:] = [0b1111, 0b0000, 0b1010]
        shmem.barrier_all()
        shmem.atomic_and(x, ~(1 << me), pe=0, offset=0)
        shmem.atomic_or(x, 1 << me, pe=0, offset=1)
        shmem.atomic_xor(x, 1 << me, pe=0, offset=2)
        shmem.barrier_all()
        if me == 0:
            return [int(v) for v in x.local]
        return None

    out = shmem.launch(kernel, num_pes=2)
    assert out[0] == [0b1100, 0b0011, 0b1001]


def test_fetch_bitwise_return_old():
    def kernel():
        x = shmem.shmalloc_array((1,), np.uint64)
        x.local[0] = 0b1100
        shmem.barrier_all()
        old = shmem.atomic_fetch_or(x, 0b0011, pe=shmem.my_pe())
        return (int(old), int(x.local[0]))

    out = shmem.launch(kernel, num_pes=1)
    assert out[0] == (0b1100, 0b1111)


def test_atomics_on_offset_element():
    def kernel():
        x = shmem.shmalloc_array((4,), np.int64)
        shmem.barrier_all()
        shmem.atomic_add(x, 5, pe=0, offset=2)
        shmem.barrier_all()
        if shmem.my_pe() == 0:
            return list(x.local)
        return None

    out = shmem.launch(kernel, num_pes=3)
    assert out[0] == [0, 0, 15, 0]


def test_atomics_require_8_byte_dtype():
    def kernel():
        x = shmem.shmalloc_array((1,), np.int32)
        shmem.atomic_fadd(x, 1, pe=0)

    with pytest.raises(RuntimeError, match="8-byte"):
        shmem.launch(kernel, num_pes=1)


def test_bitwise_requires_integer_dtype():
    def kernel():
        x = shmem.shmalloc_array((1,), np.float64)
        shmem.atomic_and(x, 1, pe=0)

    with pytest.raises(RuntimeError, match="integer"):
        shmem.launch(kernel, num_pes=1)


def test_float_atomics_swap_fadd():
    def kernel():
        x = shmem.shmalloc_array((1,), np.float64)
        x.local[0] = 1.5
        shmem.barrier_all()
        if shmem.my_pe() == 0:
            old = shmem.atomic_fadd(x, 2.25, pe=0)
            assert old == 1.5
        shmem.barrier_all()
        return float(x.local[0])

    assert shmem.launch(kernel, num_pes=1) == [3.75]


def test_unknown_atomic_op_rejected():
    def kernel():
        x = shmem.shmalloc_array((1,), np.int64)
        shmem._layer().atomic(x, 0, 0, "nand", 1)

    with pytest.raises(RuntimeError, match="unknown atomic"):
        shmem.launch(kernel, num_pes=1)
