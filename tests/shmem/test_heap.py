"""Symmetric heap allocation semantics."""

import numpy as np
import pytest

from repro import shmem
from repro.runtime.launcher import Job


def test_same_offset_on_every_pe():
    def kernel():
        x = shmem.shmalloc_array((8,), np.int64)
        return x.byte_offset

    offsets = shmem.launch(kernel, num_pes=4)
    assert len(set(offsets)) == 1


def test_sequential_allocations_disjoint():
    def kernel():
        a = shmem.shmalloc_array((16,), np.int64)
        b = shmem.shmalloc_array((16,), np.int64)
        return (a.byte_offset, b.byte_offset)

    for a_off, b_off in shmem.launch(kernel, num_pes=3):
        assert abs(a_off - b_off) >= 16 * 8


def test_local_views_are_independent_per_pe():
    def kernel():
        x = shmem.shmalloc_array((4,), np.int64)
        x.local[:] = shmem.my_pe()
        shmem.barrier_all()
        return list(x.local)

    out = shmem.launch(kernel, num_pes=3)
    assert out == [[0] * 4, [1] * 4, [2] * 4]


def test_shfree_and_reuse():
    def kernel():
        a = shmem.shmalloc_array((1024,), np.uint8)
        off = a.byte_offset
        shmem.shfree(a)
        b = shmem.shmalloc_array((1024,), np.uint8)
        return off == b.byte_offset

    assert all(shmem.launch(kernel, num_pes=2))


def test_use_after_free_rejected():
    def kernel():
        a = shmem.shmalloc_array((4,), np.int64)
        shmem.shfree(a)
        try:
            _ = a.local
        except ValueError:
            return "raised"
        return "no error"

    assert shmem.launch(kernel, num_pes=2) == ["raised", "raised"]


def test_mismatched_collective_alloc_detected():
    def kernel():
        shape = (4,) if shmem.my_pe() == 0 else (8,)
        shmem.shmalloc_array(shape, np.int64)

    with pytest.raises(RuntimeError, match="collective"):
        shmem.launch(kernel, num_pes=2)


def test_shmalloc_bytes():
    def kernel():
        buf = shmem.shmalloc(100)
        assert buf.dtype == np.uint8
        assert buf.size == 100
        return True

    assert all(shmem.launch(kernel, num_pes=2))


def test_scalar_and_multidim_shapes():
    def kernel():
        s = shmem.shmalloc_array((), np.float64)
        m = shmem.shmalloc_array((3, 4), np.float32)
        m.local[:] = 1.5
        return (s.shape, m.shape, float(m.local.sum()))

    out = shmem.launch(kernel, num_pes=2)
    assert out[0] == ((), (3, 4), pytest.approx(18.0))


def test_negative_shape_rejected():
    def kernel():
        shmem.shmalloc_array((-1,), np.int64)

    with pytest.raises(RuntimeError, match="negative"):
        shmem.launch(kernel, num_pes=1)


def test_heap_exhaustion_raises():
    def kernel():
        shmem.shmalloc(1 << 22)

    with pytest.raises(RuntimeError, match="cannot allocate"):
        shmem.launch(kernel, num_pes=1, heap_bytes=1 << 16)


def test_element_offset_and_span_checks():
    def kernel():
        x = shmem.shmalloc_array((8,), np.int64)
        assert x.element_offset(2) == x.byte_offset + 16
        try:
            x.element_offset(8)
        except IndexError:
            pass
        else:
            raise AssertionError("no bounds check")
        try:
            x.check_span(4, 5)
        except IndexError:
            return True
        raise AssertionError("span check missed overflow")

    assert all(shmem.launch(kernel, num_pes=1))


def test_attach_idempotent():
    job = Job(2)
    layer1 = shmem.attach(job)
    layer2 = shmem.attach(job)
    assert layer1 is layer2


def test_shrealloc_preserves_prefix():
    def kernel():
        me = shmem.my_pe()
        a = shmem.shmalloc_array((4,), np.int64)
        a.local[:] = np.arange(4) + me * 10
        shmem.barrier_all()
        b = shmem.shrealloc(a, (8,))
        assert list(b.local[:4]) == [me * 10 + i for i in range(4)]
        assert b.size == 8
        try:
            _ = a.local  # old handle is dead
        except ValueError:
            pass
        else:
            raise AssertionError("old handle survived shrealloc")
        c = shmem.shrealloc(b, (2,))  # shrink keeps the prefix
        assert list(c.local) == [me * 10, me * 10 + 1]
        return True

    assert all(shmem.launch(kernel, num_pes=3))


def test_accessibility_queries():
    def kernel():
        a = shmem.shmalloc_array((4,), np.int64)
        assert shmem.pe_accessible(0)
        assert shmem.pe_accessible(shmem.num_pes() - 1)
        assert not shmem.pe_accessible(shmem.num_pes())
        assert not shmem.pe_accessible(-1)
        assert shmem.addr_accessible(a, 0)
        shmem.shfree(a)
        assert not shmem.addr_accessible(a, 0)
        return True

    assert all(shmem.launch(kernel, num_pes=2))
