"""Ordering and synchronization: quiet, fence, barrier, wait_until."""

import numpy as np

from repro import shmem
from repro.runtime.context import current
from tests.conftest import TEST_MACHINE


def test_quiet_waits_for_remote_completion():
    """After an inter-node put, quiet advances the clock to remote
    completion; a second quiet is free."""

    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((1 << 14,), np.uint8)
        shmem.barrier_all()
        if me == 0:
            t0 = current().clock.now
            shmem.put(x, np.zeros(1 << 14, dtype=np.uint8), pe=2)
            t_local = current().clock.now
            shmem.quiet()
            t_quiet = current().clock.now
            shmem.quiet()
            t_quiet2 = current().clock.now
            assert t_local > t0
            assert t_quiet > t_local  # remote completion later than local
            assert t_quiet2 == t_quiet
        shmem.barrier_all()
        return True

    assert all(shmem.launch(kernel, num_pes=4, machine=TEST_MACHINE))


def test_fence_is_cheap():
    def kernel():
        t0 = current().clock.now
        shmem.fence()
        return current().clock.now - t0

    out = shmem.launch(kernel, num_pes=1)
    assert 0 < out[0] < 0.1


def test_barrier_includes_quiet():
    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((1 << 14,), np.uint8)
        shmem.barrier_all()
        layer = shmem._layer()
        if me == 0:
            shmem.put(x, np.zeros(1 << 14, dtype=np.uint8), pe=2)
            assert layer._pending[0] > 0
        shmem.barrier_all()
        assert layer._pending[me] == 0
        return True

    assert all(shmem.launch(kernel, num_pes=4, machine=TEST_MACHINE))


def test_barrier_aligns_clocks():
    def kernel():
        current().clock.advance(float(shmem.my_pe()) * 7)
        shmem.barrier_all()
        return current().clock.now

    out = shmem.launch(kernel, num_pes=4)
    assert len({round(t, 6) for t in out}) == 1
    assert out[0] > 21.0  # at least the max arrival


def test_wait_until_blocks_for_remote_write():
    def kernel():
        me = shmem.my_pe()
        flag = shmem.shmalloc_array((1,), np.int64)
        data = shmem.shmalloc_array((4,), np.int64)
        shmem.barrier_all()
        if me == 0:
            shmem.put(data, [5, 6, 7, 8], pe=1)
            shmem.quiet()  # data before signal
            shmem.atomic_set(flag, 1, pe=1)
            return None
        if me == 1:
            shmem.wait_until(flag, shmem.CMP_EQ, 1)
            return list(data.local)
        return None

    out = shmem.launch(kernel, num_pes=2)
    assert out[1] == [5, 6, 7, 8]


def test_wait_until_comparisons():
    def kernel():
        me = shmem.my_pe()
        v = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if me == 0:
            shmem.atomic_set(v, 10, pe=1)
        else:
            shmem.wait_until(v, shmem.CMP_GE, 10)
            shmem.wait_until(v, shmem.CMP_NE, 0)
            shmem.wait_until(v, shmem.CMP_GT, 9)
            shmem.wait_until(v, shmem.CMP_LT, 11)
            shmem.wait_until(v, shmem.CMP_LE, 10)
        return True

    assert all(shmem.launch(kernel, num_pes=2))


def test_wait_until_merges_writer_timestamp():
    """The waiter's clock jumps to (at least) the write's arrival time."""

    def kernel():
        me = shmem.my_pe()
        flag = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if me == 0:
            current().clock.advance(500.0)  # writer is far in the future
            shmem.atomic_set(flag, 1, pe=2)
            return None
        if me == 2:
            shmem.wait_until(flag, shmem.CMP_EQ, 1)
            return current().clock.now
        return None

    out = shmem.launch(kernel, num_pes=4, machine=TEST_MACHINE)
    assert out[2] > 500.0
