"""OpenSHMEM global locks (the API the paper deems unsuitable for CAF)."""

import numpy as np
import pytest

from repro import shmem


def test_mutual_exclusion():
    def kernel():
        lck = shmem.shmalloc_array((1,), np.int64)
        counter = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        for _ in range(20):
            shmem.set_lock(lck)
            # non-atomic read-modify-write, safe only under the lock
            v = int(shmem.get(counter, 1, 0)[0])
            shmem.put(counter, [v + 1], 0)
            shmem.clear_lock(lck)
        shmem.barrier_all()
        return int(counter.local[0]) if shmem.my_pe() == 0 else None

    out = shmem.launch(kernel, num_pes=6)
    assert out[0] == 6 * 20


def test_test_lock_nonblocking():
    def kernel():
        me = shmem.my_pe()
        lck = shmem.shmalloc_array((1,), np.int64)
        shmem.barrier_all()
        if me == 0:
            assert shmem.test_lock(lck) is True  # uncontended: acquired
        shmem.barrier_all()
        if me == 1:
            assert shmem.test_lock(lck) is False  # held by PE 0
        shmem.barrier_all()
        if me == 0:
            shmem.clear_lock(lck)
        shmem.barrier_all()
        if me == 1:
            assert shmem.test_lock(lck) is True
            shmem.clear_lock(lck)
        return True

    assert all(shmem.launch(kernel, num_pes=2))


def test_clear_unheld_lock_rejected():
    def kernel():
        lck = shmem.shmalloc_array((1,), np.int64)
        shmem.clear_lock(lck)

    with pytest.raises(RuntimeError, match="does not hold"):
        shmem.launch(kernel, num_pes=1)


def test_lock_requires_8_byte_word():
    def kernel():
        lck = shmem.shmalloc_array((1,), np.int32)
        shmem.set_lock(lck)

    with pytest.raises(RuntimeError, match="8-byte"):
        shmem.launch(kernel, num_pes=1)


def test_lock_is_single_global_entity():
    """The paper's point: the lock is one logical entity — two PEs
    "locking at different PEs" still exclude each other (there is no
    per-PE lock)."""

    def kernel():
        me = shmem.my_pe()
        lck = shmem.shmalloc_array((1,), np.int64)
        order = shmem.shmalloc_array((2,), np.int64)
        shmem.barrier_all()
        shmem.set_lock(lck)
        idx = int(shmem.atomic_fadd(order, 1, pe=0, offset=1))
        shmem.atomic_set(order, me + 1, pe=0) if idx == 0 else None
        shmem.clear_lock(lck)
        shmem.barrier_all()
        return int(order.local[1]) if me == 0 else None

    out = shmem.launch(kernel, num_pes=4)
    assert out[0] == 4  # all four serialized through the one lock
