"""shmem_ptr: intra-node direct load/store (the paper's future work)."""

import numpy as np

from repro import shmem
from tests.conftest import TEST_MACHINE


def test_ptr_same_node_gives_view():
    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((4,), np.int64)
        x.local[:] = me * 10
        shmem.barrier_all()
        # TEST_MACHINE has 2 cores/node: PEs (0,1) and (2,3) share nodes.
        buddy = me ^ 1
        p = shmem.shmem_ptr(x, buddy)
        assert p is not None
        assert list(p) == [buddy * 10] * 4
        shmem.barrier_all()
        # Direct store through the pointer is visible to the owner.
        if me == 0:
            p[0] = 999
        shmem.barrier_all()
        if me == 1:
            assert x.local[0] == 999
        return True

    assert all(shmem.launch(kernel, num_pes=4, machine=TEST_MACHINE))


def test_ptr_cross_node_returns_none():
    def kernel():
        me = shmem.my_pe()
        x = shmem.shmalloc_array((4,), np.int64)
        shmem.barrier_all()
        other_node = (me + 2) % 4
        return shmem.shmem_ptr(x, other_node) is None

    assert all(shmem.launch(kernel, num_pes=4, machine=TEST_MACHINE))


def test_ptr_self_always_works():
    def kernel():
        x = shmem.shmalloc_array((2, 3), np.float64)
        p = shmem.shmem_ptr(x, shmem.my_pe())
        assert p is not None and p.shape == (2, 3)
        return True

    assert all(shmem.launch(kernel, num_pes=2))
