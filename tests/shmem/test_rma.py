"""Contiguous and 1-D strided RMA correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import shmem


def test_put_then_get_roundtrip():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((8,), np.int64)
        x.local[:] = -1
        shmem.barrier_all()
        shmem.put(x, np.arange(8) + me * 100, (me + 1) % n)
        shmem.barrier_all()
        left = (me - 1) % n
        assert np.array_equal(x.local, np.arange(8) + left * 100)
        got = shmem.get(x, 8, (me + 1) % n)
        assert np.array_equal(got, np.arange(8) + me * 100)
        return True

    assert all(shmem.launch(kernel, num_pes=4))


def test_put_with_offset():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((10,), np.int32)
        x.local[:] = 0
        shmem.barrier_all()
        shmem.put(x, [7, 8], (me + 1) % n, offset=3)
        shmem.barrier_all()
        assert list(x.local[3:5]) == [7, 8]
        assert x.local[0] == 0 and x.local[5] == 0
        return True

    assert all(shmem.launch(kernel, num_pes=3))


def test_get_with_offset():
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((10,), np.int32)
        x.local[:] = np.arange(10) * (me + 1)
        shmem.barrier_all()
        got = shmem.get(x, 3, (me + 1) % n, offset=5)
        peer = (me + 1) % n + 1
        assert list(got) == [5 * peer, 6 * peer, 7 * peer]
        return True

    assert all(shmem.launch(kernel, num_pes=3))


def test_put_to_self():
    def kernel():
        x = shmem.shmalloc_array((4,), np.int64)
        shmem.put(x, [1, 2, 3, 4], shmem.my_pe())
        shmem.quiet()
        return list(x.local)

    assert shmem.launch(kernel, num_pes=2) == [[1, 2, 3, 4]] * 2


def test_zero_length_put_get():
    def kernel():
        x = shmem.shmalloc_array((4,), np.int64)
        shmem.put(x, np.empty(0, dtype=np.int64), 0)
        got = shmem.get(x, 0, 0)
        assert got.size == 0
        return True

    assert all(shmem.launch(kernel, num_pes=2))


def test_put_bounds_checked():
    def kernel():
        x = shmem.shmalloc_array((4,), np.int64)
        shmem.put(x, np.zeros(5, dtype=np.int64), 0)

    with pytest.raises(RuntimeError, match="span|IndexError"):
        shmem.launch(kernel, num_pes=1)


def test_put_invalid_pe():
    def kernel():
        x = shmem.shmalloc_array((4,), np.int64)
        shmem.put(x, [1], 9)

    with pytest.raises(RuntimeError, match="out of range"):
        shmem.launch(kernel, num_pes=2)


def test_dtype_coercion():
    def kernel():
        x = shmem.shmalloc_array((3,), np.float64)
        shmem.put(x, [1, 2, 3], shmem.my_pe())  # ints coerce to float64
        shmem.quiet()
        return x.local.dtype == np.float64 and list(x.local) == [1.0, 2.0, 3.0]

    assert all(shmem.launch(kernel, num_pes=1))


# ---------------------------------------------------------------------------
# Strided (iput/iget)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("profile", ["cray-shmem", "mvapich2x-shmem"])
def test_iput_scatter_matches_numpy(profile):
    """Same result whether iput is native (Cray) or looped (MVAPICH2-X)."""

    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((30,), np.int64)
        x.local[:] = 0
        shmem.barrier_all()
        src = np.arange(20)
        shmem.iput(x, src, tst=3, sst=2, nelems=5, pe=(me + 1) % n, offset=1)
        shmem.barrier_all()
        expect = np.zeros(30, dtype=np.int64)
        expect[1:16:3] = src[0:10:2]
        assert np.array_equal(x.local, expect), x.local
        return True

    assert all(shmem.launch(kernel, num_pes=2, profile=profile))


@pytest.mark.parametrize("profile", ["cray-shmem", "mvapich2x-shmem"])
def test_iget_gather_matches_numpy(profile):
    def kernel():
        me, n = shmem.my_pe(), shmem.num_pes()
        x = shmem.shmalloc_array((40,), np.int64)
        x.local[:] = np.arange(40) + me * 1000
        shmem.barrier_all()
        peer = (me + 1) % n
        got = shmem.iget(x, tst=1, sst=4, nelems=6, pe=peer, offset=2)
        expect = (np.arange(40) + peer * 1000)[2:26:4]
        assert np.array_equal(got, expect)
        return True

    assert all(shmem.launch(kernel, num_pes=2, profile=profile))


def test_iput_validation():
    def kernel():
        x = shmem.shmalloc_array((10,), np.int64)
        try:
            shmem.iput(x, np.arange(10), tst=0, sst=1, nelems=3, pe=0)
        except ValueError:
            pass
        else:
            raise AssertionError("zero stride accepted")
        try:
            shmem.iput(x, np.arange(2), tst=1, sst=2, nelems=3, pe=0)
        except ValueError:
            return True
        raise AssertionError("short source accepted")

    assert all(shmem.launch(kernel, num_pes=1))


def test_iput_nelems_zero_noop():
    def kernel():
        x = shmem.shmalloc_array((4,), np.int64)
        x.local[:] = 5
        shmem.iput(x, np.empty(0, dtype=np.int64), tst=1, sst=1, nelems=0, pe=0)
        got = shmem.iget(x, tst=1, sst=1, nelems=0, pe=0)
        return got.size == 0 and list(x.local) == [5] * 4

    assert all(shmem.launch(kernel, num_pes=1))


@settings(max_examples=15, deadline=None)
@given(
    tst=st.integers(1, 4),
    sst=st.integers(1, 4),
    nelems=st.integers(0, 8),
    offset=st.integers(0, 4),
)
def test_iput_property_random_strides(tst, sst, nelems, offset):
    """iput scatter == the equivalent NumPy strided assignment."""
    size = 64

    def kernel():
        x = shmem.shmalloc_array((size,), np.int64)
        x.local[:] = -7
        src = np.arange(40)
        shmem.iput(x, src, tst=tst, sst=sst, nelems=nelems, pe=0, offset=offset)
        shmem.quiet()
        expect = np.full(size, -7, dtype=np.int64)
        if nelems:
            expect[offset : offset + nelems * tst : tst] = src[: nelems * sst : sst]
        assert np.array_equal(x.local, expect)
        return True

    assert all(shmem.launch(kernel, num_pes=1))
