"""Setup shim: enables legacy editable installs (``pip install -e .``)
in offline environments that lack the ``wheel`` package needed for
PEP 660 editable wheels.  All metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
