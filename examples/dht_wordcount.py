"""Parallel word counting on the distributed hash table.

Uses the DHT from the paper's Section V-C benchmark as an application
data structure: every image counts word occurrences from its shard of a
corpus, updating a table distributed over all images under coarray
locks (the MCS locks of Section IV-D).  At the end, image 1 gathers the
global top words.

Run:  python examples/dht_wordcount.py
"""

import numpy as np

from repro import caf
from repro.bench.dht import DistributedHashTable

IMAGES = 4

CORPUS = (
    "the quick brown fox jumps over the lazy dog "
    "the dog barks and the fox runs away over the hill "
    "pgas models partition the global address space "
    "openshmem is the communication layer for the caf runtime "
    "the runtime maps caf features onto openshmem features"
).split()


def word_key(word: str) -> int:
    """Stable positive 60-bit key for a word (fits the DHT's int64)."""
    h = 1469598103934665603
    for ch in word.encode():
        h = ((h ^ ch) * 1099511628211) & ((1 << 60) - 1)
    return h or 1


def kernel():
    me, n = caf.this_image(), caf.num_images()
    table = DistributedHashTable(slots_per_image=64, locks_per_image=4)

    # Shard the corpus round-robin and count into the shared table.
    my_words = CORPUS[me - 1 :: n]
    for word in my_words:
        table.update(word_key(word))
    caf.sync_all()

    # Verify the global totals with a reduction.
    _, local_total = table.local_totals()
    totals = np.array([float(local_total)])
    caf.co_sum(totals)
    assert totals[0] == len(CORPUS), (totals, len(CORPUS))

    if me == 1:
        # Look up a few interesting words (any image may do this).
        report = {}
        for word in ("the", "fox", "openshmem", "caf", "unseen-word"):
            report[word] = table.lookup(word_key(word))
        return report
    return None


def main():
    out = caf.launch(kernel, num_images=IMAGES, backend="shmem")
    report = out[0]
    truth = {w: CORPUS.count(w) or None for w in report}
    print(f"{len(CORPUS)} words counted across {IMAGES} images")
    for word, count in report.items():
        print(f"  {word!r:16s} -> {count}   (expected {truth[word]})")
        assert count == truth[word]
    print("distributed counts match the serial truth.")


if __name__ == "__main__":
    main()
