"""2-D heat diffusion with strided coarray halo exchange.

The introductory workload the paper motivates: a stencil code whose
halo exchange is exactly the multi-dimensional strided communication of
Section IV-C.  The grid is **column-decomposed** across images, so each
halo is a grid *column* — a strided section (one element per row) that
the runtime must decompose into OpenSHMEM calls:

* ``naive``  — one ``putmem`` per element (``NX`` calls per halo);
* ``2dim``   — one ``iput`` line along the row dimension (1 call).

Both produce identical physics; the call counters show the
communication difference (the paper's Fig 6c in miniature).

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro import caf

NX = 48  # rows
NY_GLOBAL = 64  # columns (decomposed)
IMAGES = 4
ITERATIONS = 40
ALPHA = 0.1


def solve(strided_algorithm):
    me, n = caf.this_image(), caf.num_images()
    cols = NY_GLOBAL // n
    # local slab + one halo column on each side
    grid = caf.coarray((NX, cols + 2), np.float64)
    grid[:] = 0.0
    # hot boundary along the left edge of the global domain
    if me == 1:
        grid[:, 0] = 100.0
    caf.sync_all()

    left = me - 1 if me > 1 else None
    right = me + 1 if me < n else None

    residual = np.array([0.0])
    for _ in range(ITERATIONS):
        g = grid.local
        interior = g[1:-1, 1:-1]
        new = interior + ALPHA * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:] - 4 * interior
        )
        delta = float(np.max(np.abs(new - interior)))
        g[1:-1, 1:-1] = new
        # Everyone finishes computing from the old halos before anyone
        # overwrites them (a put may not land in a halo still being read).
        caf.sync_all()
        # halo exchange: my first/last interior columns -> neighbour halos
        if left is not None:
            grid.on(left).put(
                (slice(None), cols + 1), g[:, 1], algorithm=strided_algorithm
            )
        if right is not None:
            grid.on(right).put(
                (slice(None), 0), g[:, cols], algorithm=strided_algorithm
            )
        caf.sync_all()
        residual = np.array([delta])
        caf.co_max(residual)
    stats = caf.current_runtime().stats if me == 1 else None
    return grid.local[:, 1:-1].copy(), float(residual[0]), stats


def main():
    results = {}
    for algo in ("naive", "2dim"):
        out = caf.launch(
            solve, num_images=IMAGES, backend="shmem", profile="cray-shmem",
            args=(algo,),
        )
        field = np.hstack([slab for slab, _, _ in out])
        residual = out[0][1]
        stats = out[0][2]
        results[algo] = field
        print(
            f"policy={algo:6s}  final residual={residual:.6f}  "
            f"putmem calls={stats['putmem_calls']}  iput calls={stats['iput_calls']}"
        )
    assert np.allclose(results["naive"], results["2dim"])
    peak = results["2dim"].max()
    print(f"fields identical across policies; peak interior temperature {peak:.3f}")


if __name__ == "__main__":
    main()
