"""Producer/consumer pipeline with CAF events and non-symmetric data.

Exercises the extension features: events (``event post`` /
``event wait``) for point-to-point flow control, and the managed
non-symmetric heap with packed remote pointers (paper Section IV-A and
the 20/36/8-bit pointers of IV-D) for variable-sized per-image buffers.

Image 1 produces batches of values; each downstream image transforms
its batch in place in its *own-sized* non-symmetric buffer, publishes a
remote pointer, and signals completion with an event.  Image 1 collects
results through the pointers.

Run:  python examples/pipeline_events.py
"""

import numpy as np

from repro import caf

IMAGES = 5
BATCHES = 3


def kernel():
    me, n = caf.this_image(), caf.num_images()
    rt = caf.current_runtime()

    ready = caf.event_type()  # producer -> worker: batch available
    done = caf.event_type()  # worker -> producer: result ready
    inbox = caf.coarray((8,), np.float64)  # producer writes batches here
    # Each worker allocates a result buffer of its own size — classic
    # non-symmetric data; the pointer coarray makes it reachable.
    out_size = 3 + me  # differs per image on purpose (max 8 = batch size)
    result = caf.nonsymmetric((out_size,), np.float64)
    result.local[:] = 0.0
    pointers = caf.coarray((1,), np.uint64)
    pointers[:] = result.packed()
    sizes = caf.coarray((1,), np.int64)
    sizes[:] = out_size
    caf.sync_all()

    if me == 1:
        collected = []
        for batch in range(BATCHES):
            for worker in range(2, n + 1):
                inbox.on(worker)[:] = np.arange(8, dtype=np.float64) + batch * 10
                ready.post(worker)
            for worker in range(2, n + 1):
                done.wait()
            for worker in range(2, n + 1):
                rptr = int(pointers.on(worker)[0])
                wsize = int(sizes.on(worker)[0])
                vals = caf.get_remote(rt, rptr, (wsize,), np.float64)
                collected.append((batch, worker, vals.copy()))
        caf.sync_all()
        return collected
    # workers
    for batch in range(BATCHES):
        ready.wait()
        data = inbox.local
        out = result.local
        out[:] = data[: out.size] * me  # transform into my own-size buffer
        done.post(1)
    caf.sync_all()
    return None


def main():
    out = caf.launch(kernel, num_images=IMAGES, backend="shmem")
    collected = out[0]
    assert len(collected) == BATCHES * (IMAGES - 1)
    for batch, worker, vals in collected:
        expect = (np.arange(8) + batch * 10)[: 3 + worker] * worker
        assert np.allclose(vals, expect), (batch, worker, vals, expect)
    print(f"collected {len(collected)} result buffers via packed remote pointers:")
    for batch, worker, vals in collected[: IMAGES - 1]:
        print(f"  batch {batch}, image {worker} (size {len(vals)}): {vals}")
    print("pipeline results verified.")


if __name__ == "__main__":
    main()
