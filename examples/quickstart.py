"""Quickstart: the paper's Figure 1 program, in both dialects.

The paper's Figure 1 shows one program twice — as Coarray Fortran and
as its OpenSHMEM translation.  This example runs both on the simulated
substrate and checks they produce the same data, which is the paper's
Section IV-A mapping in action:

=====================  =====================
CAF                    OpenSHMEM
=====================  =====================
``coarray ... [*]``    ``shmalloc``
``num_images()``       ``num_pes()``
``this_image()``       ``my_pe()``
``y(2) = x(3)[4]``     ``shmem_int_get``
``x(1)[4] = y(2)``     ``shmem_int_put``
``sync all``           ``shmem_barrier_all``
=====================  =====================

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import caf, shmem

NUM_IMAGES = 4


def caf_variant():
    """Left-hand side of the paper's Figure 1 (0-based element indices)."""
    num_image = caf.num_images()
    my_image = caf.this_image()

    coarray_x = caf.coarray((4,), np.int64)  # integer :: coarray_x(4)[*]
    coarray_y = caf.coarray((4,), np.int64)  # allocate(coarray_y(4)[*])

    coarray_x[:] = my_image  # coarray_x = my_image
    coarray_y[:] = 0  # coarray_y = 0
    caf.sync_all()

    if num_image >= 4:
        coarray_y[2] = coarray_x.on(4)[3]  # coarray_y(2) = coarray_x(3)[4]
        coarray_x.on(4)[1] = coarray_y[2]  # coarray_x(1)[4] = coarray_y(2)
    caf.sync_all()  # sync all

    return coarray_x.local.copy(), coarray_y.local.copy()


def shmem_variant():
    """Right-hand side of the paper's Figure 1."""
    num_image = shmem.num_pes()
    my_image = shmem.my_pe() + 1  # PEs are 0-based; match CAF numbering

    coarray_x = shmem.shmalloc_array((4,), np.int64)
    coarray_y = shmem.shmalloc_array((4,), np.int64)

    coarray_x.local[:] = my_image
    coarray_y.local[:] = 0
    shmem.barrier_all()

    if num_image >= 4:
        # coarray_y(2) = coarray_x(3)[4]  ->  shmem_int_get
        coarray_y.local[2] = shmem.get(coarray_x, 1, pe=3, offset=3)[0]
        # coarray_x(1)[4] = coarray_y(2)  ->  shmem_int_put
        shmem.put(coarray_x, coarray_y.local[2:3], pe=3, offset=1)
    shmem.barrier_all()

    return coarray_x.local.copy(), coarray_y.local.copy()


def main():
    caf_out = caf.launch(caf_variant, num_images=NUM_IMAGES, backend="shmem")
    shmem_out = shmem.launch(shmem_variant, num_pes=NUM_IMAGES)

    print("image |        CAF x        |      OpenSHMEM x")
    for img in range(NUM_IMAGES):
        cx, cy = caf_out[img]
        sx, sy = shmem_out[img]
        print(f"  {img + 1}   | {cx} | {sx}")
        assert np.array_equal(cx, sx), (cx, sx)
        assert np.array_equal(cy, sy), (cy, sy)
    print("CAF variant and OpenSHMEM variant agree — Figure 1 reproduced.")


if __name__ == "__main__":
    main()
