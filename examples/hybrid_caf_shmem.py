"""Hybrid CAF + OpenSHMEM programming (paper Section I).

One of the paper's motivations for putting CAF on OpenSHMEM: "such an
implementation allows us to incorporate OpenSHMEM calls directly into
CAF applications ... and explore the ramifications of such a hybrid
model."  Because the CAF runtime here *is* an OpenSHMEM client, a CAF
kernel launched with the ``shmem`` backend can mix both APIs on the
same job:

* high-level phases use coarrays and ``sync all``;
* a performance-critical phase drops to raw ``shmem`` puts and
  NIC-offloaded atomics;
* ``shmem_ptr`` (the paper's future-work item) turns intra-node
  co-memory into plain NumPy views.

Run:  python examples/hybrid_caf_shmem.py
"""

import numpy as np

from repro import caf, shmem

IMAGES = 8  # spans one Stampede node? no: 16/node — all intra-node


def kernel():
    me, n = caf.this_image(), caf.num_images()

    # --- CAF phase: build a distributed vector -----------------------
    x = caf.coarray((16,), np.float64)
    x[:] = np.arange(16) * me
    caf.sync_all()

    # --- raw OpenSHMEM phase: ring rotation with explicit puts -------
    buf = shmem.shmalloc_array((16,), np.float64)
    right = me % n  # PE index of image me+1
    shmem.put(buf, x.local, pe=right)
    shmem.barrier_all()
    received_from = (me - 2) % n + 1

    # --- NIC atomics from SHMEM inside a CAF program ------------------
    counter = shmem.shmalloc_array((1,), np.int64)
    shmem.barrier_all()
    shmem.atomic_add(counter, int(buf.local.sum()), pe=0)
    shmem.barrier_all()

    # --- shmem_ptr fast path for a same-node neighbour ----------------
    ptr_view = shmem.shmem_ptr(buf, right)
    direct = ptr_view is not None  # all 8 PEs share one 16-core node

    caf.sync_all()
    if me == 1:
        total = int(counter.local[0])
        expect = sum(int(np.arange(16).sum()) * img for img in range(1, n + 1))
        assert total == expect, (total, expect)
        return {"ring ok": True, "atomic total": total, "shmem_ptr direct": direct}
    assert buf.local[1] == received_from * 1.0
    return None


def main():
    out = caf.launch(kernel, num_images=IMAGES, backend="shmem")
    print("hybrid CAF + OpenSHMEM kernel results (image 1):")
    for k, v in out[0].items():
        print(f"  {k}: {v}")


if __name__ == "__main__":
    main()
