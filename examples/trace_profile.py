"""Profiling a CAF stencil with the communication tracer.

Attaches :mod:`repro.trace` to a halo-exchange kernel and prints the
kind of report CrayPat would give on the paper's Cray machines: a
per-operation communication profile and an ASCII timeline showing where
each image's virtual time went (compute vs puts vs barriers).

Run:  python examples/trace_profile.py
"""

import numpy as np

from repro import caf, trace
from repro.runtime.launcher import Job

IMAGES = 4
N = 96
ITERS = 12


def kernel():
    rt = caf.current_runtime()
    rt.startup()
    me, n = caf.this_image(), caf.num_images()
    cols = N // n
    grid = caf.coarray((N, cols + 2), np.float64)
    grid[:] = float(me)
    caf.sync_all()
    left = me - 1 if me > 1 else None
    right = me + 1 if me < n else None
    for _ in range(ITERS):
        g = grid.local
        g[1:-1, 1:-1] += 0.25 * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:] - 4 * g[1:-1, 1:-1]
        )
        caf.sync_all()
        if left is not None:
            grid.on(left)[:, cols + 1] = g[:, 1]
        if right is not None:
            grid.on(right)[:, 0] = g[:, cols]
        caf.sync_all()
    return float(grid.local.sum())


def main():
    job = Job(IMAGES, "cray-xc30", heap_bytes=1 << 22)
    caf.attach(job, backend="shmem", profile="cray-shmem")
    tracer = trace.attach(job)
    job.run(kernel)

    print(tracer.profile().render())
    print()
    for pe in range(IMAGES):
        comm = tracer.comm_time(pe)
        print(f"PE {pe}: {tracer.count()} job events, comm time {comm:.1f}us")
    print()
    print(tracer.timeline(1))
    assert tracer.count("iput") > 0 or tracer.count("put") > 0
    assert tracer.count("barrier") >= ITERS
    print("\ntrace profile complete.")


if __name__ == "__main__":
    main()
