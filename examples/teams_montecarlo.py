"""Ensemble Monte Carlo with Fortran 2018 teams.

Two independent Monte Carlo estimations of pi run side by side, each in
its own team: inside ``change team``, images see team-relative
identities, team-scoped coarrays, and team collectives, so the two
ensembles never synchronize with each other.  Afterwards the initial
team combines both estimates with a global ``co_sum``.

Run:  python examples/teams_montecarlo.py
"""

import numpy as np

from repro import caf

IMAGES = 8
SAMPLES_PER_IMAGE = 20_000


def kernel():
    me, n = caf.this_image(), caf.num_images()
    ensemble = 1 + (me - 1) % 2  # odds -> ensemble 1, evens -> ensemble 2
    team = caf.form_team(ensemble)

    with caf.change_team(team):
        tme, tn = caf.this_image(), caf.num_images()
        # distinct, reproducible stream per (ensemble, team image)
        rng = np.random.default_rng(1000 * ensemble + tme)
        xy = rng.random((SAMPLES_PER_IMAGE, 2))
        hits = np.array([float(np.count_nonzero((xy**2).sum(axis=1) <= 1.0))])
        caf.co_sum(hits)  # team reduction only
        estimate = 4.0 * hits[0] / (SAMPLES_PER_IMAGE * tn)
        # team image 1 records the ensemble's result in a team coarray
        result = caf.coarray((1,), np.float64)
        result[:] = estimate
        caf.sync_all()  # team barrier

    # back in the initial team: average the two ensemble estimates
    estimates = np.array([estimate / 2.0])
    caf.co_sum(estimates, result_image=1)
    if me == 1:
        # each estimate was contributed by every image of its team, so
        # the sum counts each ensemble tn times; normalize
        combined = estimates[0] / (IMAGES // 2)
        return (ensemble, estimate, combined)
    return (ensemble, estimate, None)


def main():
    out = caf.launch(kernel, num_images=IMAGES)
    by_ensemble = {}
    for ensemble, estimate, _ in out:
        by_ensemble.setdefault(ensemble, set()).add(round(estimate, 12))
    # all members of a team agree on their team's estimate
    assert all(len(v) == 1 for v in by_ensemble.values())
    e1 = by_ensemble[1].pop()
    e2 = by_ensemble[2].pop()
    combined = out[0][2]
    print(f"ensemble 1 (images 1,3,5,7): pi ~= {e1:.5f}")
    print(f"ensemble 2 (images 2,4,6,8): pi ~= {e2:.5f}")
    print(f"combined:                    pi ~= {combined:.5f}")
    assert abs(e1 - np.pi) < 0.05 and abs(e2 - np.pi) < 0.05
    assert abs(combined - (e1 + e2) / 2) < 1e-9
    print("team ensembles ran independently and combined correctly.")


if __name__ == "__main__":
    main()
