"""Distributed matrix transpose — the classic PGAS all-to-all.

A global ``N x N`` matrix is row-block distributed; transposing it
means every image scatters column blocks into every other image's rows.
Each remote write is a *strided section* put (the receiving block lands
in ``rows x cols`` of the target's slab), making this the many-target
generalization of the paper's Section IV-C communication pattern.

The example runs the transpose under two strided policies and with the
cost-model planner, verifies all three against NumPy's transpose, and
prints the communication call counts and virtual times.

Run:  python examples/matrix_transpose.py
"""

import numpy as np

from repro import caf
from repro.runtime.context import current

IMAGES = 4
N = 64  # global matrix is N x N; N % IMAGES == 0


def transpose(policy):
    me, n = caf.this_image(), caf.num_images()
    rows = N // n
    rt = caf.current_runtime()

    a = caf.coarray((rows, N), np.float64)  # my row block of A
    b = caf.coarray((rows, N), np.float64)  # my row block of A^T
    row0 = (me - 1) * rows
    a[:] = np.arange(row0 * N, (row0 + rows) * N, dtype=np.float64).reshape(rows, N)
    b[:] = 0.0
    caf.sync_all()
    rt.reset_stats()

    t0 = current().clock.now
    # Block (me -> j): my columns [ (j-1)*rows : j*rows ) transpose into
    # image j's columns [ (me-1)*rows : me*rows ).
    for j in range(1, n + 1):
        block = a.local[:, (j - 1) * rows : j * rows].T  # rows x rows
        b.on(j).put(
            (slice(None), slice(row0, row0 + rows)), block, algorithm=policy
        )
    caf.sync_all()
    elapsed = current().clock.now - t0

    stats = rt.stats if me == 1 else None
    return b.local.copy(), elapsed, stats


def main():
    full = np.arange(N * N, dtype=np.float64).reshape(N, N)
    expected = full.T
    for policy in ("naive", "2dim", "model"):
        out = caf.launch(
            transpose,
            num_images=IMAGES,
            machine="cray-xc30",
            backend="shmem",
            profile="cray-shmem",
            heap_bytes=1 << 22,
            args=(policy,),
        )
        result = np.vstack([block for block, _, _ in out])
        assert np.array_equal(result, expected), policy
        elapsed = max(t for _, t, _ in out)
        stats = out[0][2]
        calls = stats["putmem_calls"] + stats["iput_calls"]
        print(
            f"policy={policy:6s}  correct transpose  "
            f"library calls={calls:5d}  virtual time={elapsed:8.1f}us"
        )
    print("all policies agree with NumPy's transpose.")


if __name__ == "__main__":
    main()
